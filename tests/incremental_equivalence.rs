//! Differential oracle for the incremental engine (DESIGN.md §4f): a
//! session that grows its horizon append-only must be **observationally
//! identical** to cold-building each horizon from scratch — same runs in
//! the same order, same view structure, same decisions, same optimality
//! verdicts, same fixed-point iteration counts — with the cold path
//! serving as the independent oracle. Sessions opened on chaos-disturbed,
//! budget-partial, and sampled bases are covered too.

use eba::model::ScenarioSpace;
use eba::prelude::*;
use eba::sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
use eba_core::protocols::{f_lambda_2, zero_chain_pair};
use eba_kripke::fixpoint;
use eba_kripke::parse::parse_formula;
use std::sync::Arc;

/// Run-by-run, point-by-point content equality. The incremental path
/// clones the base view table, so its `ViewId` numbering is a permutation
/// of a cold build's — views are compared by structural rendering, which
/// is table-independent.
fn assert_systems_equivalent(warm: &GeneratedSystem, cold: &GeneratedSystem) {
    assert_eq!(warm.num_runs(), cold.num_runs());
    assert_eq!(warm.table().len(), cold.table().len());
    assert_eq!(warm.horizon(), cold.horizon());
    let n = warm.n();
    for r in cold.run_ids() {
        assert_eq!(warm.run(r).config, cold.run(r).config);
        assert_eq!(warm.run(r).pattern, cold.run(r).pattern);
        assert_eq!(warm.nonfaulty(r), cold.nonfaulty(r));
        for time in 0..=cold.horizon().index() {
            for p in ProcessorId::all(n) {
                let t = Time::new(time as u16);
                assert_eq!(
                    warm.table().render(warm.view(r, p, t)),
                    cold.table().render(cold.view(r, p, t)),
                    "view content diverges at run {r:?}, time {time}, {p}"
                );
            }
        }
    }
}

/// Computes a protocol's decisions, its optimality verdict, and the
/// `C_N(∃0)` greatest-fixed-point result over `system` — the downstream
/// artifacts the equivalence must extend to.
fn downstream_artifacts(
    system: &GeneratedSystem,
    cache: Option<KnowledgeCache>,
    build: fn(&mut Constructor<'_>) -> DecisionPair,
) -> (FipDecisions, bool, (u64, usize)) {
    let mut ctor = match cache {
        Some(cache) => Constructor::with_cache(system, cache),
        None => Constructor::new(system),
    };
    let pair = build(&mut ctor);
    let decisions = FipDecisions::compute(system, &pair, "pair");
    let optimal = check_optimality(&mut ctor, &pair).is_optimal();
    let phi = parse_formula("E0").unwrap();
    let (sat, iterations) = fixpoint::common_by_gfp(ctor.evaluator(), NonRigidSet::Nonfaulty, &phi);
    (decisions, optimal, (sat.count_ones() as u64, iterations))
}

fn assert_artifacts_match(
    warm_system: &GeneratedSystem,
    warm_cache: &KnowledgeCache,
    cold_system: &GeneratedSystem,
    build: fn(&mut Constructor<'_>) -> DecisionPair,
) {
    let (warm_dec, warm_opt, warm_gfp) =
        downstream_artifacts(warm_system, Some(warm_cache.clone()), build);
    let (cold_dec, cold_opt, cold_gfp) = downstream_artifacts(cold_system, None, build);
    for r in cold_system.run_ids() {
        for p in ProcessorId::all(cold_system.n()) {
            assert_eq!(
                warm_dec.decision(r, p),
                cold_dec.decision(r, p),
                "decision diverges at run {r:?}, {p}"
            );
        }
    }
    assert_eq!(warm_opt, cold_opt, "optimality verdict diverges");
    assert_eq!(
        warm_gfp, cold_gfp,
        "C_N(E0) gfp result or iteration count diverges"
    );
}

#[test]
fn crash_sweep_matches_cold_builds_at_every_horizon() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let mut session = EngineSession::exhaustive(&scenario).unwrap();
    for h in [3u16, 4] {
        let report = session.extend_to(h).unwrap();
        assert_eq!(
            report.total_runs(),
            session.system().num_runs(),
            "report accounts for every run"
        );
        assert!(report.reused_runs > 0);
        assert!(report.fresh_runs > 0, "new crash rounds add fresh patterns");

        let cold = GeneratedSystem::exhaustive(&scenario.with_horizon(h).unwrap());
        assert_systems_equivalent(session.system(), &cold);
        assert_artifacts_match(session.system(), session.cache(), &cold, f_lambda_2);
    }
    assert_eq!(session.epoch(), 2);
}

#[test]
fn omission_sweep_matches_cold_builds() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 1).unwrap();
    let mut session = EngineSession::exhaustive(&scenario).unwrap();
    for h in [2u16, 3] {
        session.extend_to(h).unwrap();
        let cold = GeneratedSystem::exhaustive(&scenario.with_horizon(h).unwrap());
        assert_systems_equivalent(session.system(), &cold);
    }
    assert_artifacts_match(
        session.system(),
        session.cache(),
        &GeneratedSystem::exhaustive(&scenario.with_horizon(3).unwrap()),
        zero_chain_pair,
    );
}

#[test]
fn one_jump_equals_many_small_steps() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let mut stepped = EngineSession::exhaustive(&scenario).unwrap();
    stepped.extend_to(3).unwrap();
    stepped.extend_to(4).unwrap();
    let mut jumped = EngineSession::exhaustive(&scenario).unwrap();
    jumped.extend_to(4).unwrap();
    assert_systems_equivalent(stepped.system(), jumped.system());
    assert_eq!(stepped.extensions().len(), 2);
    assert_eq!(jumped.extensions().len(), 1);
}

#[test]
fn chaos_disturbed_base_extends_identically() {
    // A shard panic during base generation is absorbed by supervision and
    // must leave no trace in the extended system.
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
    let plan = Arc::new(ChaosPlan::new().with_fault(FaultSite::BuilderShard, 1, FaultKind::Panic));
    let outcome = SystemBuilder::new(&scenario)
        .threads(4)
        .shards(4)
        .chaos(plan as Arc<dyn FaultInjector>)
        .build_governed()
        .unwrap();
    assert!(outcome.is_complete());
    let mut session =
        EngineSession::from_system(outcome.into_system(), eba::core::SessionScope::FullSpace);
    session.extend_to(3).unwrap();
    let cold = GeneratedSystem::exhaustive(&scenario.with_horizon(3).unwrap());
    assert_systems_equivalent(session.system(), &cold);
}

#[test]
fn budget_partial_base_extends_as_pinned_prefix() {
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
    // A budget of exactly two (of four) shards: the governed build keeps
    // the longest contiguous prefix of completed shards, so the partial
    // base is non-empty and deterministic.
    let space = ScenarioSpace::new(scenario);
    let shards = space.shards(4);
    let two_shards = (shards[0].len() + shards[1].len()) * space.num_configs();
    let outcome = SystemBuilder::new(&scenario)
        .threads(2)
        .shards(4)
        .budget(RunBudget::unlimited().with_max_runs(two_shards as u64))
        .build_governed()
        .unwrap();
    assert!(outcome.budget_hit().is_some(), "budget must bind");
    let base = outcome.into_system();
    assert!(base.num_runs() > 0);

    let delta = scenario.extend_horizon(3).unwrap();
    let specs: Vec<_> = base
        .run_ids()
        .map(|r| {
            let record = base.run(r);
            (record.config.clone(), delta.pad_pattern(&record.pattern))
        })
        .collect();

    let mut session = EngineSession::from_system(base, eba::core::SessionScope::PinnedRuns);
    let report = session.extend_to(3).unwrap();
    assert_eq!(report.fresh_runs, 0, "pinned extension only reuses");

    let oracle = GeneratedSystem::from_runs(&scenario.with_horizon(3).unwrap(), specs);
    assert_systems_equivalent(session.system(), &oracle);
}

#[test]
fn sampled_base_extends_as_pinned_runs() {
    let scenario = Scenario::new(4, 2, FailureMode::Omission, 2).unwrap();
    let base = GeneratedSystem::sampled(&scenario, 30, 0xEBA);
    let delta = scenario.extend_horizon(4).unwrap();
    let specs: Vec<_> = base
        .run_ids()
        .map(|r| {
            let record = base.run(r);
            (record.config.clone(), delta.pad_pattern(&record.pattern))
        })
        .collect();

    let mut session = EngineSession::from_system(base, eba::core::SessionScope::PinnedRuns);
    session.extend_to(4).unwrap();
    let oracle = GeneratedSystem::from_runs(&scenario.with_horizon(4).unwrap(), specs);
    assert_systems_equivalent(session.system(), &oracle);
}

#[test]
fn stale_knowledge_artifacts_never_survive_an_extension() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let mut session = EngineSession::exhaustive(&scenario).unwrap();

    // Populate the cache with point-indexed artifacts at the base
    // horizon — including the content-independent `Nonfaulty` key, the
    // dangerous one: it would hit verbatim at the next horizon if epochs
    // did not fence it. `C(E0)` forces the reachability structure and the
    // scope columns of `Nonfaulty` through the shared cache.
    let phi = parse_formula("E0").unwrap();
    let common = parse_formula("C(E0)").unwrap();
    let mut eval = session.evaluator();
    let base_sat = eval.eval(&common);
    assert_eq!(base_sat.len(), session.system().num_points());
    drop(eval);
    assert!(!session.cache().is_empty(), "base evaluation must cache");

    session.extend_to(3).unwrap();
    let stats = session.cache().stats();
    assert_eq!(stats.epoch, 1);
    assert!(stats.invalidated > 0, "epoch advance must purge entries");

    // Post-extension evaluation is sized to the new system and equal to a
    // cold evaluator's result.
    let mut warm_eval = session.evaluator();
    let (warm_sat, warm_iters) =
        fixpoint::common_by_gfp(&mut warm_eval, NonRigidSet::Nonfaulty, &phi);
    assert_eq!(warm_sat.len(), session.system().num_points());

    let cold_system = GeneratedSystem::exhaustive(&scenario.with_horizon(3).unwrap());
    let mut cold_eval = Evaluator::new(&cold_system);
    let (cold_sat, cold_iters) =
        fixpoint::common_by_gfp(&mut cold_eval, NonRigidSet::Nonfaulty, &phi);
    assert_eq!(warm_sat.count_ones(), cold_sat.count_ones());
    assert_eq!(warm_iters, cold_iters);
}

#[test]
fn find_run_is_loadbearing_and_consistent_after_extension() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let base = GeneratedSystem::exhaustive(&scenario);
    let mut session = EngineSession::from_system(base.clone(), eba::core::SessionScope::FullSpace);
    let report = session.extend_to(3).unwrap();
    let extended = session.system();

    // The hash-map index answers exactly like a linear scan, for every
    // extended run.
    for r in extended.run_ids() {
        let record = extended.run(r);
        assert_eq!(extended.find_run(&record.config, &record.pattern), Some(r));
    }

    // Every base run's padding is found in the extended system — this is
    // the reuse channel `SystemBuilder::extend` resolves through
    // `find_run`, so the reuse count is bounded by these lookups.
    let delta = scenario.extend_horizon(3).unwrap();
    let mut padded_found = 0usize;
    for r in base.run_ids() {
        let record = base.run(r);
        let padded = delta.pad_pattern(&record.pattern);
        if extended.find_run(&record.config, &padded).is_some() {
            padded_found += 1;
        }
    }
    assert_eq!(padded_found, base.num_runs());
    assert!(report.reused_runs >= padded_found);

    // Absent runs answer None.
    assert!(extended
        .find_run(
            &InitialConfig::uniform(4, Value::One),
            &FailurePattern::failure_free(4)
        )
        .is_none());
}
