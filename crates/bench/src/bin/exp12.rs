//! Experiment EXP12; see `eba_bench::experiments::exp12`.
fn main() {
    for table in eba_bench::experiments::exp12() {
        table.print();
    }
}
