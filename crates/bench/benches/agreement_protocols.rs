//! Benchmarks of the added protocols: the waste-based SBA and the
//! multi-valued family, measured per 32 sampled runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_model::sample::{self, PatternSampler};
use eba_model::{FailureMode, Scenario};
use eba_protocols::multi::{execute_multi, MultiConfig, MultiFloodMin, MultiRelay};
use eba_protocols::SbaWaste;
use eba_sim::execute_unchecked;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sba_waste(c: &mut Criterion) {
    let mut group = c.benchmark_group("sba_waste_32runs");
    for n in [8usize, 32, 64] {
        let t = n / 4;
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(n as u64);
        let sampler = PatternSampler::new(scenario);
        let runs: Vec<_> = (0..32)
            .map(|_| {
                (
                    sample::random_config_biased(n, 1.0 / n as f64, &mut rng),
                    sampler.sample(&mut rng),
                )
            })
            .collect();
        let protocol = SbaWaste::new(n, t);
        group.bench_with_input(BenchmarkId::from_parameter(n), &runs, |b, runs| {
            b.iter(|| {
                for (config, pattern) in runs {
                    black_box(execute_unchecked(
                        &protocol,
                        config,
                        pattern,
                        scenario.horizon(),
                    ));
                }
            });
        });
    }
    group.finish();
}

fn multi_valued(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_valued_32runs");
    for n in [8usize, 32] {
        let t = n / 4;
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(3 * n as u64);
        let sampler = PatternSampler::new(scenario);
        let domain = 5u8;
        let runs: Vec<_> = (0..32)
            .map(|_| {
                let values = (0..n)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0..domain))
                    .collect();
                (MultiConfig::new(domain, values), sampler.sample(&mut rng))
            })
            .collect();
        let flood = MultiFloodMin::new(t);
        let relay = MultiRelay::new(t, (0..domain).collect());
        group.bench_with_input(BenchmarkId::new("MultiFloodMin", n), &runs, |b, runs| {
            b.iter(|| {
                for (config, pattern) in runs {
                    black_box(execute_multi(&flood, config, pattern, scenario.horizon()));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("MultiRelay", n), &runs, |b, runs| {
            b.iter(|| {
                for (config, pattern) in runs {
                    black_box(execute_multi(&relay, config, pattern, scenario.horizon()));
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sba_waste, multi_valued
}
criterion_main!(benches);
