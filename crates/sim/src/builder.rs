//! Staged, shardable, supervised construction of generated systems.
//!
//! [`SystemBuilder`] replaces the monolithic exhaustive generation loop
//! with a three-stage pipeline:
//!
//! 1. **shard** — the scenario's pattern axis is split into deterministic
//!    contiguous chunks by [`ScenarioSpace::shards`];
//! 2. **build** — each shard enumerates its `(pattern, config)` block and
//!    interns full-information views into a *shard-local* [`ViewTable`],
//!    with no shared state, so shards run on independent threads;
//! 3. **merge** — shard tables are absorbed into one canonical table *in
//!    shard order* ([`ViewTable::absorb`]), and shard run lists are
//!    concatenated.
//!
//! Because shards cover contiguous slices of the sequential enumeration
//! order and `absorb` re-interns each shard's views in first-encounter
//! order, the merged system is **bit-identical** to a sequential build:
//! the same `ViewId` and `RunId` assignment for every worker/shard count.
//! Downstream artifacts (decision tables, optimality verdicts, printed
//! ids) therefore never depend on the machine's parallelism.
//!
//! # Robustness (DESIGN.md §4c)
//!
//! Shard workers run under the supervised pool of [`crate::chaos`]: a
//! panicking shard is retried once and then rebuilt sequentially, and
//! because [`build_shard`](SystemBuilder) is a pure function of its
//! shard, the recovered system is bit-identical to an undisturbed one.
//! Only a shard that panics on all three attempts surfaces — as a typed
//! [`EngineFault`] from [`SystemBuilder::build_governed`].
//!
//! A [`RunBudget`] bounds the build cooperatively. The run bound is
//! *planned statically* at shard granularity (each shard's run count is
//! known before any work), so the set of built shards — and therefore the
//! partial system — is deterministic. The wall-clock deadline is checked
//! per pattern inside every shard and the view bound per pattern and per
//! merged shard; exhaustion yields [`BuildOutcome::Partial`] carrying the
//! longest contiguous prefix of completed shards, never a hang or a
//! panic.
//!
//! Id-space overflows surface as [`ModelError::CapacityExceeded`] from
//! [`SystemBuilder::build`] instead of panicking mid-generation.

use crate::chaos::{
    supervised_indexed, EngineFault, FaultInjector, FaultSite, NoChaos, WorkerFault,
};
use crate::exchange::{try_exchange_views, AnyExchange, Exchange};
use crate::symmetry::SymmetryInfo;
use crate::system::{GeneratedSystem, RunId, RunRecord};
use crate::view::{ViewId, ViewTable};
use eba_model::symmetry::{canonicalize, MAX_SYMMETRY_N};
use eba_model::{
    ArmedBudget, BudgetHit, FailurePattern, HorizonDelta, InitialConfig, ModelError, Round,
    RunBudget, Scenario, ScenarioSpace, Shard,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::thread;

/// The number of runs a [`GeneratedSystem`] can hold (`RunId` is a `u32`).
pub const RUN_CAPACITY: u128 = 1 << 32;

/// How many shards each worker thread gets by default; more shards than
/// threads lets fast shards backfill while slow ones finish.
const SHARDS_PER_THREAD: usize = 4;

/// How many extension blocks each worker thread gets by default. Lower
/// than [`SHARDS_PER_THREAD`] because every extension block clones the
/// base view table, so oversubscription costs memory, and the
/// work-stealing pool rebalances stragglers anyway.
const EXTEND_BLOCKS_PER_THREAD: usize = 2;

/// Configurable, parallel, supervised builder for exhaustive
/// [`GeneratedSystem`]s; see the module docs for the staging, the
/// determinism guarantee, and the robustness policy.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::SystemBuilder;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = SystemBuilder::new(&scenario).threads(2).build()?;
/// assert_eq!(system.num_runs(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SystemBuilder {
    scenario: Scenario,
    threads: usize,
    shards: Option<usize>,
    budget: RunBudget,
    chaos: Arc<dyn FaultInjector>,
    symmetry: bool,
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("scenario", &self.scenario)
            .field("threads", &self.threads)
            .field("shards", &self.shards)
            .field("budget", &self.budget)
            .field("symmetry", &self.symmetry)
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// A builder for the exhaustive system of `scenario`, defaulting to
    /// one worker per available CPU, no budget, and no fault injection.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let threads = thread::available_parallelism().map_or(1, |p| p.get());
        SystemBuilder {
            scenario: *scenario,
            threads,
            shards: None,
            budget: RunBudget::unlimited(),
            chaos: Arc::new(NoChaos),
            symmetry: false,
        }
    }

    /// Turns the symmetry quotient on or off (off by default). A
    /// quotiented build simulates one representative pattern per
    /// `Sym(n)` orbit — the canonical form of
    /// [`eba_model::symmetry::canonicalize`] — crossed with every
    /// initial configuration, and attaches the orbit accounting
    /// ([`crate::symmetry::SymmetryInfo`]) to the system. Queries about
    /// skipped runs are answered by relabeling
    /// ([`GeneratedSystem::resolve_run`]). Requires the full-information
    /// exchange and `n ≤ MAX_SYMMETRY_N`; violations surface as
    /// [`ModelError::InvalidScenario`] from the build entry points.
    #[must_use]
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Sets the number of worker threads (clamped to at least 1). One
    /// thread builds sequentially on the caller's thread.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the number of shards (clamped to at least 1). Defaults to
    /// four per worker thread. The result is identical for every shard
    /// count; this knob only tunes load balance against merge overhead.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets the resource budget honored by [`build_governed`].
    ///
    /// [`build_governed`]: SystemBuilder::build_governed
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a fault injector ([`crate::chaos`]) consulted once per
    /// shard. Production builds keep the default [`NoChaos`].
    #[must_use]
    pub fn chaos(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.chaos = injector;
        self
    }

    /// Builds the complete exhaustive system: every initial configuration
    /// crossed with every canonical failure pattern, in enumeration
    /// order. Any configured budget is ignored — this entry point always
    /// runs to completion; use [`build_governed`] for bounded runs.
    ///
    /// [`build_governed`]: SystemBuilder::build_governed
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the scenario has more
    /// runs than `RunId` can index (checked up front, before any work) or
    /// more distinct views than `ViewId` can index.
    ///
    /// # Panics
    ///
    /// Panics only when a shard defeats supervision by panicking on the
    /// initial attempt, the retry, *and* the sequential fallback (see
    /// [`crate::chaos::supervised_indexed`]) — with the fault's rendered
    /// message, never a bare `expect`.
    pub fn build(mut self) -> Result<GeneratedSystem, ModelError> {
        self.budget = RunBudget::unlimited();
        match self.build_governed() {
            Ok(outcome) => Ok(outcome.into_system()),
            Err(EngineFault::Model(e)) => Err(e),
            Err(fault @ EngineFault::WorkerPanicked { .. }) => panic!("{fault}"),
        }
    }

    /// Extends `base` — an **exhaustive** system of the same `(n, t,
    /// mode)` at a strictly smaller horizon — into the exhaustive system
    /// of this builder's scenario, reusing every base-horizon view prefix
    /// that survives the pattern-space growth.
    ///
    /// The extended pattern space is re-enumerated in canonical order
    /// (pattern-outer, configuration-inner), so run ids, run order, and
    /// view *content* are bit-identical to a cold
    /// [`build`](SystemBuilder::build) of the same scenario; only the
    /// internal `ViewId` numbering may differ (base-table ids come first),
    /// which is never observable through the system's API. For each
    /// extended pattern whose base-horizon truncation
    /// ([`FailurePattern::truncated_to`]) names a canonical base pattern,
    /// the base run is located via [`GeneratedSystem::find_run`] and its
    /// flattened view row is copied verbatim; only the appended rounds are
    /// simulated. Patterns with no base counterpart (failures scheduled in
    /// the new rounds, or crash patterns the base horizon canonicalized
    /// away) are simulated from scratch.
    ///
    /// Extension runs the appended-round pattern blocks through the same
    /// supervised work-stealing pool as a cold build: the pattern axis is
    /// split into contiguous blocks, each block clones the base table and
    /// simulates its slice, and the block tables are absorbed back in
    /// block order (the canonical re-interning merge). Because a block
    /// table is the base table plus the block's new views in enumeration
    /// order, absorbing into a merged table that starts as a base clone
    /// maps every base id to itself — so run ids, view ids, and view
    /// content are bit-identical for every thread/block count, and
    /// identical to a sequential extension. The builder's `threads`,
    /// `shards`, and `chaos` knobs are honored (chaos is consulted once
    /// per block at [`FaultSite::BuilderShard`]); the budget applies to
    /// cold builds only and is ignored here.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] unless `base` has the same
    /// `n`, `t`, and mode and a strictly smaller horizon, and
    /// [`ModelError::CapacityExceeded`] when the extended scenario
    /// overflows the run or view id space.
    ///
    /// # Panics
    ///
    /// Panics only when a block defeats supervision by panicking on all
    /// three attempts (see [`crate::chaos::supervised_indexed`]), with
    /// the fault's rendered message — mirroring [`build`].
    ///
    /// [`build`]: SystemBuilder::build
    pub fn extend(
        self,
        base: &GeneratedSystem,
    ) -> Result<(GeneratedSystem, ExtendReport), ModelError> {
        let delta = self.extension_delta(base)?;
        let space = ScenarioSpace::new(self.scenario);
        if space.total_runs() > RUN_CAPACITY {
            return Err(ModelError::capacity_exceeded("run ids", RUN_CAPACITY));
        }
        let configs: Vec<InitialConfig> = space.configs().collect();
        // A symmetric base extends into a symmetric system: the extended
        // enumeration is filtered to canonical patterns exactly like a
        // cold quotiented build. (Truncation does not preserve
        // canonicality, so a canonical extended pattern may truncate to a
        // non-representative base pattern; `find_run` then misses and the
        // run is simulated fresh — reuse degrades, correctness doesn't.)
        let symmetric = base.symmetry().is_some();

        let blocks = space.shards(self.extend_blocks());
        let workers = self.threads.min(blocks.len().max(1));
        let chaos = &*self.chaos;
        let outcomes = run_extend_pool(blocks.len(), workers, |index| {
            chaos.inject(FaultSite::BuilderShard, index)?;
            extend_block(base, &delta, &space, &configs, blocks[index], symmetric)
        });
        let merged = merge_extend_parts(base, outcomes)?;

        let symmetry = symmetric
            .then(|| Arc::new(SymmetryInfo::new(merged.orbit_sizes, space.num_patterns())));
        let system = GeneratedSystem::from_parts(
            self.scenario,
            merged.runs,
            merged.views,
            merged.table,
            merged.lookup,
            symmetry,
        );
        Ok((system, merged.report))
    }

    /// Extends `base` — **any** system of the same `(n, t, mode)` at a
    /// strictly smaller horizon, including sampled and budget-partial ones
    /// — by padding each of its runs into this builder's scenario
    /// ([`FailurePattern::padded_to`]: the pattern unchanged inside the
    /// base horizon, no new deviations in the appended rounds) and
    /// simulating only the appended rounds on top of the reused rows.
    ///
    /// Unlike [`extend`](SystemBuilder::extend) this does *not* grow the
    /// run set: the result has exactly `base.num_runs()` runs, in base
    /// order, and equals `GeneratedSystem::from_runs` over the padded
    /// specs (padding is injective, so base deduplication carries over).
    /// Every run is a reuse; the report's `fresh_runs` is always 0.
    ///
    /// Like [`extend`](SystemBuilder::extend), the appended rounds run as
    /// contiguous base-run blocks through the supervised work-stealing
    /// pool and merge by canonical re-interning, so the result is
    /// bit-identical for every thread/block count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] unless `base` has the same
    /// `n`, `t`, and mode and a strictly smaller horizon, and
    /// [`ModelError::CapacityExceeded`] on view id overflow.
    ///
    /// # Panics
    ///
    /// Panics only when a block defeats supervision by panicking on all
    /// three attempts (see [`crate::chaos::supervised_indexed`]), with
    /// the fault's rendered message — mirroring [`build`].
    ///
    /// [`build`]: SystemBuilder::build
    pub fn extend_pinned(
        self,
        base: &GeneratedSystem,
    ) -> Result<(GeneratedSystem, ExtendReport), ModelError> {
        let delta = self.extension_delta(base)?;

        let total = base.num_runs();
        let block_count = self.extend_blocks().clamp(1, total.max(1));
        let block_len = total.div_ceil(block_count).max(1);
        let bounds: Vec<std::ops::Range<usize>> = (0..total)
            .step_by(block_len)
            .map(|start| start..(start + block_len).min(total))
            .collect();
        let workers = self.threads.min(bounds.len().max(1));
        let chaos = &*self.chaos;
        let scenario = self.scenario;
        let outcomes = run_extend_pool(bounds.len(), workers, |index| {
            chaos.inject(FaultSite::BuilderShard, index)?;
            extend_pinned_block(base, &delta, scenario, bounds[index].clone())
        });
        let merged = merge_extend_parts(base, outcomes)?;
        // Padding is order-preserving on behaviors and commutes with
        // relabeling, so it maps canonical patterns to canonical patterns
        // with identical stabilizers: a symmetric base stays symmetric
        // with its orbit sizes carried over verbatim.
        let symmetry = match base.symmetry() {
            Some(info) => {
                let patterns = ScenarioSpace::try_new(self.scenario)?.num_patterns();
                Some(Arc::new(SymmetryInfo::new(
                    info.orbit_sizes().to_vec(),
                    patterns,
                )))
            }
            None => None,
        };
        let system = GeneratedSystem::from_parts(
            self.scenario,
            merged.runs,
            merged.views,
            merged.table,
            merged.lookup,
            symmetry,
        );
        Ok((system, merged.report))
    }

    /// How many blocks the extension paths split their work into: the
    /// explicit `shards` knob when set, otherwise two per worker thread.
    /// Each block clones the base table, so the oversubscription factor
    /// is kept below the cold build's to bound peak memory; the result is
    /// identical for every block count.
    fn extend_blocks(&self) -> usize {
        self.shards.unwrap_or_else(|| {
            if self.threads == 1 {
                1
            } else {
                self.threads * EXTEND_BLOCKS_PER_THREAD
            }
        })
    }

    /// Validates that `base` can be extended into this builder's scenario:
    /// identical `(n, t, mode)`, strictly larger horizon.
    fn extension_delta(&self, base: &GeneratedSystem) -> Result<HorizonDelta, ModelError> {
        base.scenario().extend_into(&self.scenario)
    }

    /// Rejects scenarios the symmetry quotient cannot serve: the view
    /// relabeling machinery is specific to full-information local states
    /// (digest states bake processor labels into bounded summaries), and
    /// permutation enumeration is capped at `MAX_SYMMETRY_N`.
    fn check_symmetry_supported(&self) -> Result<(), ModelError> {
        if !self.scenario.exchange().is_full() {
            return Err(ModelError::InvalidScenario {
                reason: "the symmetry quotient requires the full-information exchange".into(),
            });
        }
        if self.scenario.n() > MAX_SYMMETRY_N {
            return Err(ModelError::InvalidScenario {
                reason: format!("the symmetry quotient supports n ≤ {MAX_SYMMETRY_N}"),
            });
        }
        Ok(())
    }

    /// Builds the exhaustive system under the configured budget and fault
    /// injector, with supervised workers.
    ///
    /// Returns [`BuildOutcome::Complete`] when every shard was built and
    /// merged, or [`BuildOutcome::Partial`] — the longest contiguous
    /// prefix of completed shards plus the [`BudgetHit`] that stopped the
    /// build — when the budget ran out. Worker faults the supervisor
    /// absorbed along the way are listed in the outcome's
    /// [`BuildReport`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineFault::Model`] for model-level failures (id-space
    /// overflow, injected capacity faults) and
    /// [`EngineFault::WorkerPanicked`] when a shard panicked on all three
    /// supervision attempts.
    pub fn build_governed(self) -> Result<BuildOutcome, EngineFault> {
        let armed = self.budget.arm();
        let space = ScenarioSpace::new(self.scenario);
        if space.total_runs() > RUN_CAPACITY {
            return Err(ModelError::capacity_exceeded("run ids", RUN_CAPACITY).into());
        }
        if self.symmetry {
            self.check_symmetry_supported()
                .map_err(EngineFault::Model)?;
        }
        let configs: Vec<InitialConfig> = space.configs().collect();
        let shard_count = self.shards.unwrap_or_else(|| {
            if self.threads == 1 {
                1
            } else {
                self.threads * SHARDS_PER_THREAD
            }
        });
        let shards = space.shards(shard_count);
        let total_shards = shards.len();

        // Plan the run bound statically: shard k's run count is
        // `shards[k].len() × |configs|` before any work happens, so the
        // set of shards inside the budget — and hence the partial system —
        // is deterministic, independent of timing and parallelism.
        let (planned, mut hit) = plan_run_bound(&shards, configs.len() as u128, &armed);

        let workers = self.threads.min(planned.len().max(1));
        let chaos = &*self.chaos;
        let symmetry = self.symmetry;
        let (outcomes, worker_faults) =
            supervised_indexed(planned.len(), workers, FaultSite::BuilderShard, |index| {
                chaos
                    .inject(FaultSite::BuilderShard, index)
                    .map_err(ShardError::Model)?;
                build_shard(&space, &configs, planned[index], &armed, symmetry)
            })?;

        // The first stopped shard (in shard order) ends the usable prefix;
        // a model-level error there is a hard failure, a budget stop is a
        // graceful one.
        let mut parts = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                Ok(part) => parts.push(part),
                Err(ShardError::Model(e)) => return Err(EngineFault::Model(e)),
                Err(ShardError::Budget(budget_hit)) => {
                    hit = Some(budget_hit);
                    break;
                }
            }
        }

        let symmetry_total = self.symmetry.then(|| space.num_patterns());
        let (system, merged, merge_hit) = merge(self.scenario, parts, &armed, symmetry_total)?;
        if let Some(view_hit) = merge_hit {
            hit = Some(view_hit);
        }
        let report = BuildReport {
            worker_faults,
            total_shards,
        };
        Ok(match hit {
            None => BuildOutcome::Complete { system, report },
            Some(budget_hit) => BuildOutcome::Partial {
                system,
                completed_shards: merged,
                total_shards,
                budget_hit,
                report,
            },
        })
    }
}

/// What a supervised, governed build produced.
#[derive(Debug)]
pub enum BuildOutcome {
    /// Every shard was built and merged.
    Complete {
        /// The complete exhaustive system.
        system: GeneratedSystem,
        /// Supervision summary (absorbed worker faults, shard count).
        report: BuildReport,
    },
    /// The budget ran out; the longest contiguous prefix of completed
    /// shards was merged. Run- and view-bound prefixes are deterministic
    /// (statically planned / merge-order checked); a deadline prefix
    /// depends on timing but the result is always a valid prefix system.
    Partial {
        /// The system of the completed shard prefix (possibly empty).
        system: GeneratedSystem,
        /// How many shards made it into `system`.
        completed_shards: usize,
        /// How many shards a complete build would have had.
        total_shards: usize,
        /// The bound that stopped the build.
        budget_hit: BudgetHit,
        /// Supervision summary (absorbed worker faults, shard count).
        report: BuildReport,
    },
}

impl BuildOutcome {
    /// The generated (complete or prefix) system.
    #[must_use]
    pub fn system(&self) -> &GeneratedSystem {
        match self {
            BuildOutcome::Complete { system, .. } | BuildOutcome::Partial { system, .. } => system,
        }
    }

    /// Consumes the outcome, returning the system.
    #[must_use]
    pub fn into_system(self) -> GeneratedSystem {
        match self {
            BuildOutcome::Complete { system, .. } | BuildOutcome::Partial { system, .. } => system,
        }
    }

    /// The supervision report.
    #[must_use]
    pub fn report(&self) -> &BuildReport {
        match self {
            BuildOutcome::Complete { report, .. } | BuildOutcome::Partial { report, .. } => report,
        }
    }

    /// The budget hit that stopped the build, if any.
    #[must_use]
    pub fn budget_hit(&self) -> Option<BudgetHit> {
        match self {
            BuildOutcome::Complete { .. } => None,
            BuildOutcome::Partial { budget_hit, .. } => Some(*budget_hit),
        }
    }

    /// Whether every shard completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, BuildOutcome::Complete { .. })
    }
}

/// Supervision summary of one governed build.
#[derive(Clone, Default, Debug)]
pub struct BuildReport {
    /// Worker faults the supervisor absorbed (each recovered by retry or
    /// sequential fallback); empty in an undisturbed build.
    pub worker_faults: Vec<WorkerFault>,
    /// The number of shards of a complete build.
    pub total_shards: usize,
}

/// What one horizon extension reused versus recomputed (see
/// [`SystemBuilder::extend`] / [`SystemBuilder::extend_pinned`]).
///
/// A *slot* is one `(run, time, processor)` view entry of the flattened
/// system; `reused_slots + computed_slots` is the extended system's total
/// slot count.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ExtendReport {
    /// Runs whose base-horizon view rows were copied from the base system
    /// (only appended rounds simulated).
    pub reused_runs: usize,
    /// Runs simulated from scratch (no base counterpart).
    pub fresh_runs: usize,
    /// View slots copied verbatim from the base system.
    pub reused_slots: usize,
    /// View slots produced by simulation during the extension.
    pub computed_slots: usize,
}

impl ExtendReport {
    /// Total runs of the extended system.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.reused_runs + self.fresh_runs
    }

    /// Fraction of the extended system's view slots that were reused,
    /// in `[0, 1]`; 0 for an empty system.
    #[must_use]
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.reused_slots + self.computed_slots;
        if total == 0 {
            0.0
        } else {
            self.reused_slots as f64 / total as f64
        }
    }
}

impl fmt::Display for ExtendReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reused {} runs / simulated {} fresh; {} of {} view slots reused ({:.0}%)",
            self.reused_runs,
            self.fresh_runs,
            self.reused_slots,
            self.reused_slots + self.computed_slots,
            self.reuse_fraction() * 100.0
        )
    }
}

/// Why a shard stopped early.
enum ShardError {
    /// A real model-level failure (capacity overflow, injected fault).
    Model(ModelError),
    /// The shard hit the budget; the build degrades gracefully.
    Budget(BudgetHit),
}

/// Keeps the longest shard prefix whose cumulative run count stays within
/// the budget's run bound, returning the kept prefix and the hit (if the
/// bound truncated anything).
fn plan_run_bound(
    shards: &[Shard],
    num_configs: u128,
    armed: &ArmedBudget,
) -> (Vec<Shard>, Option<BudgetHit>) {
    let Some(limit) = armed.budget().max_runs() else {
        return (shards.to_vec(), None);
    };
    let mut planned = Vec::with_capacity(shards.len());
    let mut runs: u128 = 0;
    for &shard in shards {
        runs += shard.len() * num_configs;
        if runs > u128::from(limit) {
            return (planned, Some(BudgetHit::MaxRuns { limit }));
        }
        planned.push(shard);
    }
    (planned, None)
}

/// The output of one shard: runs and views with *shard-local* view ids,
/// plus (under the symmetry quotient) the orbit size of every built
/// representative pattern, in enumeration order.
struct ShardBuild {
    table: ViewTable,
    views: Vec<ViewId>,
    runs: Vec<RunRecord>,
    orbit_sizes: Vec<u64>,
}

/// Builds one shard. Pure in `(space, configs, shard, symmetry)` —
/// re-running it (the supervisor's retry and fallback) yields identical
/// output. The budget's deadline and view bound are checked once per
/// pattern. Under the symmetry quotient, non-canonical patterns are
/// skipped (never simulated) and each kept pattern records its orbit
/// size; skipping is a pure per-pattern predicate, so determinism and
/// shard-count independence are untouched.
fn build_shard(
    space: &ScenarioSpace,
    configs: &[InitialConfig],
    shard: Shard,
    armed: &ArmedBudget,
    symmetry: bool,
) -> Result<ShardBuild, ShardError> {
    let scenario = space.scenario();
    let horizon = scenario.horizon();
    let exchange = AnyExchange::for_scenario(&scenario);
    let mut table = ViewTable::new();
    let mut runs = Vec::new();
    let mut views = Vec::new();
    let mut orbit_sizes = Vec::new();
    for pattern in space.shard_patterns(shard) {
        armed.check_deadline().map_err(ShardError::Budget)?;
        // Shard-local distinct views lower-bound the merged total, so a
        // shard that exceeds the view bound by itself can stop early.
        armed
            .check_views(table.len() as u64)
            .map_err(ShardError::Budget)?;
        debug_assert!(scenario.validate_pattern(&pattern).is_ok());
        if symmetry {
            let canon = canonicalize(&pattern);
            if canon.canonical != pattern {
                continue;
            }
            orbit_sizes.push(canon.orbit_size);
        }
        let nonfaulty = pattern.nonfaulty_set();
        for config in configs {
            let run_views = try_exchange_views(&exchange, config, &pattern, horizon, &mut table)
                .map_err(ShardError::Model)?;
            for time_views in &run_views {
                views.extend_from_slice(time_views);
            }
            runs.push(RunRecord {
                config: config.clone(),
                pattern: pattern.clone(),
                nonfaulty,
            });
        }
    }
    Ok(ShardBuild {
        table,
        views,
        runs,
        orbit_sizes,
    })
}

/// Absorbs shard parts in shard order, checking the view bound after each
/// shard. Returns the system, the number of shards merged, and the view
/// hit that stopped the merge early (if any). The shard that crosses the
/// view bound is the last one included — bounds are honored to within one
/// shard, mirroring the cooperative per-loop-body deadline semantics.
fn merge(
    scenario: Scenario,
    parts: Vec<ShardBuild>,
    armed: &ArmedBudget,
    symmetry_total: Option<u128>,
) -> Result<(GeneratedSystem, usize, Option<BudgetHit>), EngineFault> {
    let mut table = ViewTable::new();
    let mut views = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut lookup = HashMap::new();
    let mut orbit_sizes = Vec::new();
    let mut merged = 0;
    let mut hit = None;
    for part in parts {
        let remap = table.absorb(&part.table).map_err(EngineFault::Model)?;
        views.extend(part.views.iter().map(|v| remap[v.index()]));
        orbit_sizes.extend_from_slice(&part.orbit_sizes);
        runs.reserve(part.runs.len());
        for record in part.runs {
            let id = RunId::try_new(runs.len()).map_err(EngineFault::Model)?;
            let prior = lookup.insert((record.config.to_bits(), record.pattern.clone()), id);
            debug_assert!(
                prior.is_none(),
                "exhaustive enumeration yielded a duplicate run"
            );
            runs.push(record);
        }
        merged += 1;
        if let Err(view_hit) = armed.check_views(table.len() as u64) {
            hit = Some(view_hit);
            break;
        }
    }
    let symmetry = symmetry_total.map(|total| Arc::new(SymmetryInfo::new(orbit_sizes, total)));
    // `from_parts` finishes by building the columnar `PointStore` over the
    // merged views, so even a budget-partial system carries its columns
    // and CSR bucket partitions.
    let system = GeneratedSystem::from_parts(scenario, runs, views, table, lookup, symmetry);
    Ok((system, merged, hit))
}

/// The output of one extension block: the base table clone grown by the
/// block's appended-round views, plus the block's runs, flattened view
/// rows (mixing base ids and block-local ids, both valid in `table`),
/// orbit sizes, and reuse accounting.
struct ExtendBlock {
    table: ViewTable,
    views: Vec<ViewId>,
    runs: Vec<RunRecord>,
    orbit_sizes: Vec<u64>,
    report: ExtendReport,
}

/// Everything [`merge_extend_parts`] folds the blocks into, ready for
/// `GeneratedSystem::from_parts`.
struct MergedExtend {
    table: ViewTable,
    views: Vec<ViewId>,
    runs: Vec<RunRecord>,
    lookup: HashMap<(u128, FailurePattern), RunId>,
    orbit_sizes: Vec<u64>,
    report: ExtendReport,
}

/// Runs the extension blocks through the supervised work-stealing pool.
/// Blocks are pure functions of their index, so absorbed worker faults
/// are transparent; a block that defeats all three supervision attempts
/// panics with the fault's rendered message, mirroring
/// [`SystemBuilder::build`].
fn run_extend_pool<F>(count: usize, workers: usize, job: F) -> Vec<Result<ExtendBlock, ModelError>>
where
    F: Fn(usize) -> Result<ExtendBlock, ModelError> + Sync,
{
    match supervised_indexed(count, workers, FaultSite::BuilderShard, job) {
        Ok((outcomes, _recovered)) => outcomes,
        Err(EngineFault::Model(e)) => vec![Err(e)],
        Err(fault @ EngineFault::WorkerPanicked { .. }) => panic!("{fault}"),
    }
}

/// Simulates one contiguous slice of the extended pattern enumeration on
/// top of a base table clone. Pure in its arguments — re-running it (the
/// supervisor's retry and fallback) yields identical output.
fn extend_block(
    base: &GeneratedSystem,
    delta: &HorizonDelta,
    space: &ScenarioSpace,
    configs: &[InitialConfig],
    block: Shard,
    symmetric: bool,
) -> Result<ExtendBlock, ModelError> {
    let scenario = space.scenario();
    let horizon = scenario.horizon();
    let n = scenario.n();
    // `extension_delta` already enforced the exchange's extension policy
    // (Scenario::extend_into), so dispatching here is sound.
    let exchange = AnyExchange::for_scenario(&scenario);
    let slots_per_run = (horizon.index() + 1) * n;
    let mut part = ExtendBlock {
        table: base.table().clone(),
        views: Vec::new(),
        runs: Vec::new(),
        orbit_sizes: Vec::new(),
        report: ExtendReport::default(),
    };
    for pattern in space.shard_patterns(block) {
        debug_assert!(scenario.validate_pattern(&pattern).is_ok());
        if symmetric {
            let canon = canonicalize(&pattern);
            if canon.canonical != pattern {
                continue;
            }
            part.orbit_sizes.push(canon.orbit_size);
        }
        let nonfaulty = pattern.nonfaulty_set();
        let truncated = delta.truncate_pattern(&pattern);
        for config in configs {
            let base_run = truncated
                .as_ref()
                .and_then(|trunc| base.find_run(config, trunc));
            match base_run {
                Some(r) => {
                    let row = base.views_row(r);
                    part.views.extend_from_slice(row);
                    let mut prev = row[row.len() - n..].to_vec();
                    for round in Round::upto(horizon) {
                        if round.end() <= delta.base().horizon() {
                            continue;
                        }
                        let now = exchange.try_step(&mut part.table, &pattern, round, &prev)?;
                        part.views.extend_from_slice(&now);
                        prev = now;
                    }
                    part.report.reused_runs += 1;
                    part.report.reused_slots += row.len();
                    part.report.computed_slots += slots_per_run - row.len();
                }
                None => {
                    let run_views =
                        try_exchange_views(&exchange, config, &pattern, horizon, &mut part.table)?;
                    for time_views in &run_views {
                        part.views.extend_from_slice(time_views);
                    }
                    part.report.fresh_runs += 1;
                    part.report.computed_slots += slots_per_run;
                }
            }
            part.runs.push(RunRecord {
                config: config.clone(),
                pattern: pattern.clone(),
                nonfaulty,
            });
        }
    }
    Ok(part)
}

/// Pads and extends one contiguous slice of the base run list on top of a
/// base table clone. Pure in its arguments, like [`extend_block`].
fn extend_pinned_block(
    base: &GeneratedSystem,
    delta: &HorizonDelta,
    scenario: Scenario,
    bounds: std::ops::Range<usize>,
) -> Result<ExtendBlock, ModelError> {
    let horizon = scenario.horizon();
    let n = scenario.n();
    let exchange = AnyExchange::for_scenario(&scenario);
    let slots_per_run = (horizon.index() + 1) * n;
    let mut part = ExtendBlock {
        table: base.table().clone(),
        views: Vec::with_capacity(bounds.len() * slots_per_run),
        runs: Vec::with_capacity(bounds.len()),
        orbit_sizes: Vec::new(),
        report: ExtendReport::default(),
    };
    for index in bounds {
        let r = RunId::try_new(index)?;
        let record = base.run(r);
        let pattern = delta.pad_pattern(&record.pattern);
        debug_assert!(scenario.validate_pattern(&pattern).is_ok());
        let row = base.views_row(r);
        part.views.extend_from_slice(row);
        let mut prev = row[row.len() - n..].to_vec();
        for round in Round::upto(horizon) {
            if round.end() <= delta.base().horizon() {
                continue;
            }
            let now = exchange.try_step(&mut part.table, &pattern, round, &prev)?;
            part.views.extend_from_slice(&now);
            prev = now;
        }
        part.report.reused_runs += 1;
        part.report.reused_slots += row.len();
        part.report.computed_slots += slots_per_run - row.len();
        part.runs.push(RunRecord {
            config: record.config.clone(),
            pattern,
            nonfaulty: record.nonfaulty,
        });
    }
    Ok(part)
}

/// Absorbs extension blocks in block order into a merged table that
/// starts as a base clone. A block table is the base table plus the
/// block's new views in first-encounter order, so re-interning maps
/// every base id to itself and appends new views exactly where a
/// sequential extension would have interned them: block boundaries are
/// invisible to the final `ViewId` numbering, whatever the thread/block
/// count. The first failed block (in block order) surfaces as the error,
/// keeping error reporting schedule-independent too.
fn merge_extend_parts(
    base: &GeneratedSystem,
    outcomes: Vec<Result<ExtendBlock, ModelError>>,
) -> Result<MergedExtend, ModelError> {
    let mut merged = MergedExtend {
        table: base.table().clone(),
        views: Vec::new(),
        runs: Vec::new(),
        lookup: HashMap::new(),
        orbit_sizes: Vec::new(),
        report: ExtendReport::default(),
    };
    for outcome in outcomes {
        let part = outcome?;
        let remap = merged.table.absorb(&part.table)?;
        merged
            .views
            .extend(part.views.iter().map(|v| remap[v.index()]));
        merged.orbit_sizes.extend_from_slice(&part.orbit_sizes);
        merged.runs.reserve(part.runs.len());
        for record in part.runs {
            let id = RunId::try_new(merged.runs.len())?;
            let prior = merged
                .lookup
                .insert((record.config.to_bits(), record.pattern.clone()), id);
            debug_assert!(prior.is_none(), "extension blocks yielded a duplicate run");
            merged.runs.push(record);
        }
        merged.report.reused_runs += part.report.reused_runs;
        merged.report.fresh_runs += part.report.fresh_runs;
        merged.report.reused_slots += part.report.reused_slots;
        merged.report.computed_slots += part.report.computed_slots;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosPlan, FaultKind};
    use eba_model::{enumerate, FailureMode, ProcessorId, Time};
    use std::time::Duration;

    fn scenario() -> Scenario {
        Scenario::new(3, 2, FailureMode::Crash, 2).unwrap()
    }

    fn assert_identical(a: &GeneratedSystem, b: &GeneratedSystem) {
        assert_eq!(a.num_runs(), b.num_runs());
        assert_eq!(a.table().len(), b.table().len());
        let n = a.n();
        for r in a.run_ids() {
            assert_eq!(a.run(r).config, b.run(r).config);
            assert_eq!(a.run(r).pattern, b.run(r).pattern);
            assert_eq!(a.nonfaulty(r), b.nonfaulty(r));
            for time in 0..=a.horizon().index() {
                for p in ProcessorId::all(n) {
                    assert_eq!(
                        a.view(r, p, Time::new(time as u16)),
                        b.view(r, p, Time::new(time as u16)),
                        "run {r:?}, time {time}, processor {p}"
                    );
                }
            }
        }
    }

    /// Content equivalence across systems whose `ViewId` numbering may
    /// differ (the extension paths clone the base table, so their ids are
    /// a permutation of a cold build's): same runs in the same order,
    /// same interned-view total, and structurally equal views at every
    /// point.
    fn assert_equivalent(a: &GeneratedSystem, b: &GeneratedSystem) {
        assert_eq!(a.num_runs(), b.num_runs());
        assert_eq!(a.table().len(), b.table().len());
        assert_eq!(a.horizon(), b.horizon());
        let n = a.n();
        for r in a.run_ids() {
            assert_eq!(a.run(r).config, b.run(r).config);
            assert_eq!(a.run(r).pattern, b.run(r).pattern);
            assert_eq!(a.nonfaulty(r), b.nonfaulty(r));
            for time in 0..=a.horizon().index() {
                for p in ProcessorId::all(n) {
                    let t = Time::new(time as u16);
                    assert_eq!(
                        a.table().render(a.view(r, p, t)),
                        b.table().render(b.view(r, p, t)),
                        "run {r:?}, time {time}, processor {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_builds_are_bit_identical_to_sequential() {
        let scenario = scenario();
        let sequential = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(1)
            .build()
            .unwrap();
        for (threads, shards) in [(2, 2), (3, 5), (4, 16), (2, 7), (8, 3)] {
            let parallel = SystemBuilder::new(&scenario)
                .threads(threads)
                .shards(shards)
                .build()
                .unwrap();
            assert_identical(&sequential, &parallel);
        }
    }

    #[test]
    fn builder_matches_legacy_from_runs_path() {
        let scenario = scenario();
        let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
        let mut specs = Vec::new();
        for pattern in enumerate::patterns(&scenario) {
            for config in &configs {
                specs.push((config.clone(), pattern.clone()));
            }
        }
        let legacy = GeneratedSystem::from_runs(&scenario, specs);
        let built = SystemBuilder::new(&scenario)
            .threads(3)
            .shards(6)
            .build()
            .unwrap();
        assert_identical(&legacy, &built);
    }

    #[test]
    fn oversized_scenarios_error_before_doing_work() {
        let scenario = Scenario::new(6, 5, FailureMode::Crash, 3).unwrap();
        let space = ScenarioSpace::new(scenario);
        assert!(space.total_runs() > RUN_CAPACITY);
        let err = SystemBuilder::new(&scenario).build().unwrap_err();
        assert!(matches!(
            err,
            ModelError::CapacityExceeded {
                what: "run ids",
                ..
            }
        ));
    }

    #[test]
    fn shard_knob_never_changes_the_result() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let base = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        for shards in [1, 2, 9, 1000] {
            let other = SystemBuilder::new(&scenario)
                .threads(2)
                .shards(shards)
                .build()
                .unwrap();
            assert_identical(&base, &other);
        }
    }

    #[test]
    fn generated_systems_cross_thread_boundaries() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<GeneratedSystem>();
        assert_send_sync::<SystemBuilder>();

        let system = SystemBuilder::new(&scenario()).threads(2).build().unwrap();
        let shared = std::sync::Arc::new(system);
        let clone = std::sync::Arc::clone(&shared);
        let runs = thread::spawn(move || clone.num_runs()).join().unwrap();
        assert_eq!(runs, shared.num_runs());
    }

    #[test]
    fn injected_shard_panic_degrades_to_bit_identical_system() {
        let scenario = scenario();
        let baseline = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(1)
            .build()
            .unwrap();
        // Panic in shard 0 of a 4-shard parallel build; the supervisor's
        // retry rebuilds the shard and the result must not change.
        let plan =
            Arc::new(ChaosPlan::new().with_fault(FaultSite::BuilderShard, 0, FaultKind::Panic));
        let outcome = SystemBuilder::new(&scenario)
            .threads(4)
            .shards(4)
            .chaos(Arc::clone(&plan) as Arc<dyn FaultInjector>)
            .build_governed()
            .unwrap();
        assert!(outcome.is_complete());
        assert_eq!(plan.fired(), 1);
        let report = outcome.report().clone();
        assert_eq!(report.worker_faults.len(), 1);
        assert_eq!(report.worker_faults[0].index, 0);
        assert_identical(&baseline, outcome.system());
    }

    #[test]
    fn every_single_shard_panic_is_survivable() {
        let scenario = scenario();
        let baseline = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        for shard in 0..4 {
            let plan = Arc::new(ChaosPlan::new().with_fault(
                FaultSite::BuilderShard,
                shard,
                FaultKind::Panic,
            ));
            let outcome = SystemBuilder::new(&scenario)
                .threads(4)
                .shards(4)
                .chaos(plan)
                .build_governed()
                .unwrap();
            assert!(outcome.is_complete());
            assert_identical(&baseline, outcome.system());
        }
    }

    #[test]
    fn persistent_shard_panic_falls_back_to_sequential_then_errors() {
        let scenario = scenario();
        // Two firings: initial + retry panic, sequential fallback succeeds.
        let plan = Arc::new(ChaosPlan::new().with_recurring_fault(
            FaultSite::BuilderShard,
            1,
            FaultKind::Panic,
            2,
        ));
        let baseline = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        let outcome = SystemBuilder::new(&scenario)
            .threads(4)
            .shards(4)
            .chaos(plan)
            .build_governed()
            .unwrap();
        assert_eq!(outcome.report().worker_faults[0].attempts, 2);
        assert_identical(&baseline, outcome.system());

        // Three firings defeat all attempts: a typed fault, not an abort.
        let hostile = Arc::new(ChaosPlan::new().with_recurring_fault(
            FaultSite::BuilderShard,
            1,
            FaultKind::Panic,
            3,
        ));
        let fault = SystemBuilder::new(&scenario)
            .threads(4)
            .shards(4)
            .chaos(hostile)
            .build_governed()
            .unwrap_err();
        assert!(matches!(
            fault,
            EngineFault::WorkerPanicked {
                site: FaultSite::BuilderShard,
                index: 1,
                ..
            }
        ));
    }

    #[test]
    fn injected_capacity_fault_is_a_typed_model_error() {
        let plan = Arc::new(ChaosPlan::new().with_fault(
            FaultSite::BuilderShard,
            2,
            FaultKind::CapacityExhaustion,
        ));
        let fault = SystemBuilder::new(&scenario())
            .threads(4)
            .shards(4)
            .chaos(plan)
            .build_governed()
            .unwrap_err();
        assert!(matches!(
            fault,
            EngineFault::Model(ModelError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn run_budget_yields_deterministic_shard_prefix() {
        let scenario = scenario();
        let space = ScenarioSpace::new(scenario);
        let shards = space.shards(4);
        let num_configs = space.num_configs();
        // Budget exactly covers the first two shards.
        let two_shards = (shards[0].len() + shards[1].len()) * num_configs;
        let outcome = SystemBuilder::new(&scenario)
            .threads(4)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_runs(two_shards as u64))
            .build_governed()
            .unwrap();
        let BuildOutcome::Partial {
            system,
            completed_shards,
            total_shards,
            budget_hit,
            ..
        } = outcome
        else {
            panic!("run budget must yield a partial outcome");
        };
        assert_eq!(completed_shards, 2);
        assert_eq!(total_shards, 4);
        assert_eq!(
            budget_hit,
            BudgetHit::MaxRuns {
                limit: two_shards as u64
            }
        );
        assert_eq!(system.num_runs() as u128, two_shards);

        // The prefix is bit-identical to the same shards of a full build:
        // partial results are usable, not garbage.
        let full = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(4)
            .build()
            .unwrap();
        for r in system.run_ids() {
            assert_eq!(system.run(r).config, full.run(r).config);
            assert_eq!(system.run(r).pattern, full.run(r).pattern);
        }
    }

    #[test]
    fn zero_run_budget_yields_empty_partial() {
        let outcome = SystemBuilder::new(&scenario())
            .threads(2)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_runs(0))
            .build_governed()
            .unwrap();
        assert_eq!(outcome.budget_hit(), Some(BudgetHit::MaxRuns { limit: 0 }));
        let BuildOutcome::Partial {
            system,
            completed_shards,
            ..
        } = outcome
        else {
            panic!("expected partial");
        };
        assert_eq!(completed_shards, 0);
        assert_eq!(system.num_runs(), 0);
    }

    #[test]
    fn expired_deadline_stops_promptly_with_partial() {
        let start = std::time::Instant::now();
        let outcome = SystemBuilder::new(&scenario())
            .threads(2)
            .shards(4)
            .budget(RunBudget::unlimited().with_deadline(Duration::ZERO))
            .build_governed()
            .unwrap();
        assert!(matches!(
            outcome.budget_hit(),
            Some(BudgetHit::Deadline { .. })
        ));
        // Termination well within 2× of any reasonable deadline: the
        // checks fire at the first pattern of each shard.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn view_budget_truncates_the_build() {
        let scenario = scenario();
        let full = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        // A one-view budget trips inside the very first shard.
        let outcome = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_views(1))
            .build_governed()
            .unwrap();
        let BuildOutcome::Partial {
            system,
            completed_shards,
            budget_hit,
            ..
        } = outcome
        else {
            panic!("view budget must yield a partial outcome");
        };
        assert_eq!(budget_hit, BudgetHit::MaxViews { limit: 1 });
        assert!(completed_shards < 4);
        assert!(system.num_runs() < full.num_runs());
    }

    #[test]
    fn extend_matches_cold_build_exactly() {
        let base_scenario = scenario();
        let base = SystemBuilder::new(&base_scenario)
            .threads(1)
            .build()
            .unwrap();
        for h in [3u16, 4] {
            let extended_scenario = base_scenario.with_horizon(h).unwrap();
            let (extended, report) = SystemBuilder::new(&extended_scenario)
                .extend(&base)
                .unwrap();
            let cold = SystemBuilder::new(&extended_scenario)
                .threads(1)
                .shards(1)
                .build()
                .unwrap();
            assert_equivalent(&cold, &extended);
            assert_eq!(report.total_runs(), cold.num_runs());
            assert!(report.reused_runs > 0, "failure-free runs always reuse");
            assert!(report.fresh_runs > 0, "new crash rounds need fresh runs");
        }
    }

    #[test]
    fn extend_chains_compose() {
        // extend(h2 → h3) then extend(h3 → h4) equals extend(h2 → h4).
        let base_scenario = scenario();
        let base = SystemBuilder::new(&base_scenario)
            .threads(1)
            .build()
            .unwrap();
        let s3 = base_scenario.with_horizon(3).unwrap();
        let s4 = base_scenario.with_horizon(4).unwrap();
        let (mid, _) = SystemBuilder::new(&s3).extend(&base).unwrap();
        let (stepped, _) = SystemBuilder::new(&s4).extend(&mid).unwrap();
        let (direct, _) = SystemBuilder::new(&s4).extend(&base).unwrap();
        assert_equivalent(&direct, &stepped);
    }

    #[test]
    fn extend_handles_omission_mode() {
        let base_scenario = Scenario::new(3, 1, FailureMode::Omission, 1).unwrap();
        let base = SystemBuilder::new(&base_scenario)
            .threads(1)
            .build()
            .unwrap();
        let extended_scenario = base_scenario.with_horizon(2).unwrap();
        let (extended, report) = SystemBuilder::new(&extended_scenario)
            .extend(&base)
            .unwrap();
        let cold = SystemBuilder::new(&extended_scenario)
            .threads(1)
            .build()
            .unwrap();
        assert_equivalent(&cold, &extended);
        // Every base omission pattern pads canonically, so a large share
        // of the extended space reuses base rows.
        assert!(report.reused_runs >= base.num_runs());
    }

    #[test]
    fn extend_rejects_incompatible_bases() {
        let base = SystemBuilder::new(&scenario()).threads(1).build().unwrap();
        // Same horizon: not an extension.
        assert!(SystemBuilder::new(&scenario()).extend(&base).is_err());
        // Smaller horizon.
        let smaller = Scenario::new(3, 2, FailureMode::Crash, 1).unwrap();
        assert!(SystemBuilder::new(&smaller).extend(&base).is_err());
        // Different parameters.
        let other_t = Scenario::new(3, 1, FailureMode::Crash, 4).unwrap();
        assert!(SystemBuilder::new(&other_t).extend(&base).is_err());
        let other_mode = Scenario::new(3, 2, FailureMode::Omission, 4).unwrap();
        assert!(SystemBuilder::new(&other_mode).extend(&base).is_err());
    }

    #[test]
    fn extend_pinned_matches_from_runs_over_padded_specs() {
        let base_scenario = Scenario::new(4, 2, FailureMode::Crash, 2).unwrap();
        let base = GeneratedSystem::sampled(&base_scenario, 40, 0xEBA);
        let extended_scenario = base_scenario.with_horizon(4).unwrap();
        let delta = base_scenario.extend_horizon(4).unwrap();
        let (extended, report) = SystemBuilder::new(&extended_scenario)
            .extend_pinned(&base)
            .unwrap();
        let specs: Vec<_> = base
            .run_ids()
            .map(|r| {
                let record = base.run(r);
                (record.config.clone(), delta.pad_pattern(&record.pattern))
            })
            .collect();
        let cold = GeneratedSystem::from_runs(&extended_scenario, specs);
        assert_equivalent(&cold, &extended);
        assert_eq!(report.fresh_runs, 0);
        assert_eq!(report.reused_runs, base.num_runs());
        assert!(report.reuse_fraction() > 0.5);
    }

    #[test]
    fn extend_pinned_preserves_budget_partial_prefixes() {
        let base_scenario = scenario();
        let space = ScenarioSpace::new(base_scenario);
        let shards = space.shards(4);
        let two_shards = (shards[0].len() + shards[1].len()) * space.num_configs();
        let outcome = SystemBuilder::new(&base_scenario)
            .threads(2)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_runs(two_shards as u64))
            .build_governed()
            .unwrap();
        let base = outcome.into_system();
        let extended_scenario = base_scenario.with_horizon(3).unwrap();
        let (extended, _) = SystemBuilder::new(&extended_scenario)
            .extend_pinned(&base)
            .unwrap();
        assert_eq!(extended.num_runs(), base.num_runs());
        // Base-horizon views of every run are untouched by the extension.
        for r in base.run_ids() {
            for time in 0..=base.horizon().index() {
                for p in ProcessorId::all(base.n()) {
                    let t = Time::new(time as u16);
                    let a = base.table().render(base.view(r, p, t));
                    let b = extended.table().render(extended.view(r, p, t));
                    assert_eq!(a, b, "run {r:?} time {time} proc {p}");
                }
            }
        }
    }

    #[test]
    fn symmetry_build_keeps_one_representative_per_orbit() {
        use eba_model::symmetry::{is_canonical, orbit_members};
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let full = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        let reduced = SystemBuilder::new(&scenario)
            .threads(2)
            .shards(5)
            .symmetry(true)
            .build()
            .unwrap();
        let info = reduced
            .symmetry()
            .expect("quotient builds carry accounting");
        // Every built pattern is canonical, each exactly once per config.
        let space = ScenarioSpace::new(scenario);
        assert_eq!(
            reduced.num_runs() as u128,
            space.count_orbits() * space.num_configs()
        );
        for r in reduced.run_ids() {
            assert!(is_canonical(&reduced.run(r).pattern));
        }
        // Orbit sizes align with the run layout and sum to the raw count.
        let configs = space.num_configs() as usize;
        for (k, &size) in info.orbit_sizes().iter().enumerate() {
            let r = RunId::new(k * configs);
            assert_eq!(
                orbit_members(&reduced.run(r).pattern).len() as u64,
                size,
                "orbit size misaligned at representative {k}"
            );
        }
        assert_eq!(info.raw_patterns_covered(), space.num_patterns());
        assert_eq!(info.raw_pattern_total(), space.num_patterns());
        assert!(info.reduction_ratio() > 1.0);
        // Every raw run resolves through a witness onto a representative
        // whose relabeled record matches.
        for r in full.run_ids() {
            let record = full.run(r);
            let (rep, witness) = reduced
                .resolve_run(&record.config, &record.pattern)
                .expect("complete quotients resolve every raw run");
            let rep_record = reduced.run(rep);
            assert_eq!(witness.apply_config(&record.config), rep_record.config);
            assert_eq!(witness.apply_pattern(&record.pattern), rep_record.pattern);
        }
        // The unreduced build carries no accounting.
        assert!(full.symmetry().is_none());
    }

    #[test]
    fn symmetry_build_is_shard_and_thread_independent() {
        let scenario = Scenario::new(4, 1, FailureMode::Crash, 2).unwrap();
        let base = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(1)
            .symmetry(true)
            .build()
            .unwrap();
        for (threads, shards) in [(2, 3), (4, 9), (3, 1000)] {
            let other = SystemBuilder::new(&scenario)
                .threads(threads)
                .shards(shards)
                .symmetry(true)
                .build()
                .unwrap();
            assert_identical(&base, &other);
            assert_eq!(
                base.symmetry().unwrap().orbit_sizes(),
                other.symmetry().unwrap().orbit_sizes()
            );
        }
    }

    #[test]
    fn symmetry_extend_matches_cold_quotient_build() {
        let base_scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
        let base = SystemBuilder::new(&base_scenario)
            .threads(1)
            .symmetry(true)
            .build()
            .unwrap();
        let extended_scenario = base_scenario.with_horizon(3).unwrap();
        let (extended, _) = SystemBuilder::new(&extended_scenario)
            .extend(&base)
            .unwrap();
        let cold = SystemBuilder::new(&extended_scenario)
            .threads(1)
            .symmetry(true)
            .build()
            .unwrap();
        assert_equivalent(&cold, &extended);
        assert_eq!(
            cold.symmetry().unwrap().orbit_sizes(),
            extended.symmetry().unwrap().orbit_sizes()
        );
    }

    #[test]
    fn symmetry_extend_pinned_carries_orbit_sizes() {
        let base_scenario = Scenario::new(3, 1, FailureMode::Omission, 1).unwrap();
        let base = SystemBuilder::new(&base_scenario)
            .threads(1)
            .symmetry(true)
            .build()
            .unwrap();
        let extended_scenario = base_scenario.with_horizon(2).unwrap();
        let (extended, report) = SystemBuilder::new(&extended_scenario)
            .extend_pinned(&base)
            .unwrap();
        assert_eq!(report.fresh_runs, 0);
        let info = extended.symmetry().unwrap();
        assert_eq!(info.orbit_sizes(), base.symmetry().unwrap().orbit_sizes());
        // Padded canonical patterns stay canonical.
        for r in extended.run_ids() {
            assert!(eba_model::symmetry::is_canonical(&extended.run(r).pattern));
        }
    }

    #[test]
    fn symmetry_rejects_digest_exchanges() {
        use eba_model::ExchangeKind;
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)
            .unwrap()
            .with_exchange(ExchangeKind::digest(16).unwrap())
            .unwrap();
        let err = SystemBuilder::new(&scenario)
            .symmetry(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidScenario { .. }));
    }

    #[test]
    fn unbudgeted_governed_build_is_complete_and_identical() {
        let scenario = scenario();
        let outcome = SystemBuilder::new(&scenario)
            .threads(3)
            .shards(5)
            .build_governed()
            .unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.report().worker_faults.is_empty());
        assert_eq!(outcome.report().total_shards, 5);
        let baseline = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        assert_identical(&baseline, outcome.system());
    }
}
