//! `eba-serve`: a fault-tolerant concurrent agreement-checking daemon.
//!
//! The engine layers below this crate (model → sim → kripke → core)
//! answer one query per process invocation; every `eba-check` run pays
//! a cold system build even when the previous run checked a different
//! formula over the *same* scenario. This crate turns the engine into a
//! persistent daemon:
//!
//! * a [`pool::SessionPool`] keeps warm [`eba_core::EngineSession`]s
//!   keyed by the full scenario `(n, t, mode, exchange, horizon,
//!   sampling)`, shared immutably (`Arc`) by any number of concurrent
//!   queries, LRU-evicted under a configurable memory budget driven by
//!   the new resident-bytes accounting;
//! * a [`server::Server`] answers line-delimited JSON queries
//!   ([`protocol`]) over TCP with per-connection threads, bounded
//!   admission (load shedding with retry hints), per-query panic
//!   isolation, slow-loris timeouts, and graceful drain on SIGINT;
//! * per-query deadlines reuse the cooperative [`eba_model::RunBudget`]
//!   machinery — a timed-out or drain-interrupted query returns the
//!   same deterministic `partial` verdict as `eba-check --deadline`;
//! * transient engine faults ([`eba_sim::chaos::EngineFault`]) are
//!   retried with bounded exponential backoff, then surfaced as typed
//!   `engine-fault` frames;
//! * [`query::oracle`] is the single-threaded cold reference: the chaos
//!   suite (`tests/serve_chaos.rs`) asserts the concurrent daemon's
//!   responses are **byte-identical** to it under load, injected worker
//!   panics, malformed frames, slow-loris clients, and mid-query
//!   eviction.
//!
//! The [`signal`] module is the workspace's single audited `unsafe`
//! exception (a POSIX `signal(2)` handler that sets one atomic flag);
//! everything else in the crate is `#![deny(unsafe_code)]` via the
//! workspace lints.

#![warn(missing_docs)]

pub mod json;
pub mod pool;
pub mod protocol;
pub mod query;
pub mod server;
pub mod signal;

pub use pool::{PoolKey, PoolStats, RetryPolicy, SessionPool};
pub use protocol::{CheckRequest, Request, ScenarioSpec, ServeError, SweepRequest};
pub use query::{execute, oracle, QueryContext};
pub use server::{render_stats_line, ServeConfig, Server, ServerStats, StatsSnapshot};
pub use signal::install_sigint;
