//! Message-level agreement protocols with realistic (linear-size)
//! messages, built on the `eba-sim` executor.
//!
//! Where `eba-core` works at the *knowledge level* (decision sets over
//! full-information views, exact but exponential), this crate implements
//! the concrete protocols the paper discusses as executable state
//! machines that scale to hundreds of processors:
//!
//! * [`Relay`] — the `P0`/`P1` protocols of \[LF82\] used in
//!   Proposition 2.1's proof that no optimum EBA protocol exists;
//! * [`P0Opt`] — the optimal crash-mode EBA protocol of Section 2.2
//!   (shown equal to `F^{Λ,2}` by Theorem 6.2);
//! * [`FloodMin`] — the classic `t + 1`-round simultaneous baseline
//!   (crash mode);
//! * [`EarlyStoppingCrash`] — clean-round early-stopping EBA (crash
//!   mode);
//! * [`ChainOmission`] — the 0-chain accept/accuse protocol implementing
//!   `FIP(Z⁰, O⁰)` of Section 6.2 at the message level (omission mode,
//!   decides by time `f + 1`);
//! * [`SbaWaste`] — early-stopping simultaneous agreement in the style of
//!   \[DM90\]'s waste-based optimum SBA (crash mode), verified against the
//!   exact common-knowledge rule;
//! * [`multi`] — multi-valued agreement over arbitrary finite domains
//!   (the Section 2.1 extension note), including the multi-valued
//!   no-optimum argument;
//! * [`runner`] — campaign helpers running a protocol over exhaustive or
//!   sampled run sets and validating the agreement properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain_omission;
mod early_stop;
mod flood;
mod p0;
mod p0opt;
mod sba_waste;

pub mod multi;
pub mod runner;

pub use chain_omission::{ChainMessage, ChainOmission, ChainState};
pub use early_stop::{EarlyStopState, EarlyStoppingCrash};
pub use flood::{FloodMin, FloodState};
pub use p0::{Relay, RelayState};
pub use p0opt::{P0Opt, P0OptMessage, P0OptState};
pub use sba_waste::{SbaWaste, SbaWasteMessage, SbaWasteState};
