//! Query execution: one [`Request`] in, one response frame out.
//!
//! The same execution path serves the concurrent daemon and the
//! single-threaded [`oracle`] — byte-identity between the two is the
//! daemon's core correctness contract, enforced by the chaos suite.
//! Responses therefore carry **no** timing, host, or pool-state fields:
//! a response is a pure function of the request (given a deterministic
//! budget; wall-clock deadlines are inherently timing-dependent and the
//! suite pins budgets with `max_runs`/`shards` instead).
//!
//! Budgeted checks bypass the pool (a partial prefix system must never
//! be pooled) and run through [`SessionPool::build_budgeted`]; a
//! deadline or drain interrupt yields the same deterministic `partial`
//! verdict shape as `eba-check --deadline`'s PARTIAL banner.

use crate::json::Json;
use crate::pool::{PoolKey, RetryPolicy, SessionPool};
use crate::protocol::{CheckRequest, Request, ScenarioSpec, ServeError, SweepRequest};
use eba_core::{check_optimality, DecisionPair, EngineSession, SessionScope};
use eba_kripke::parse::parse_formula;
use eba_kripke::{Evaluator, Formula};
use eba_model::{RunBudget, Time};
use eba_sim::{BuildOutcome, GeneratedSystem};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Everything a query needs besides the request itself.
#[derive(Clone, Copy, Debug)]
pub struct QueryContext<'a> {
    /// The warm-session pool.
    pub pool: &'a SessionPool,
    /// Drain flag: set when the server is shutting down; in-flight
    /// builds stop at their next cooperative checkpoint with a
    /// deterministic `partial` verdict.
    pub interrupt: Option<&'static AtomicBool>,
    /// Worker threads for builds and evaluation (`None` = all cores).
    /// Any value yields bit-identical results.
    pub threads: Option<usize>,
}

/// Executes one request. `Err` values map 1:1 onto typed error frames.
///
/// # Errors
///
/// Any [`ServeError`]; the caller renders it with
/// [`ServeError::to_frame`].
pub fn execute(req: &Request, ctx: &QueryContext<'_>) -> Result<Json, ServeError> {
    match req {
        Request::Ping => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::Str("pong".into())),
        ])),
        Request::Check(check) => run_check(check, ctx),
        Request::Optimize(spec) => run_optimize(spec, ctx),
        Request::Sweep(sweep) => run_sweep(sweep, ctx),
        Request::Stats => Ok(render_stats(ctx.pool)),
        Request::Evict(spec) => {
            let evicted = ctx.pool.evict(spec.map(|spec| PoolKey { spec }));
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("evict".into())),
                ("evicted", Json::Int(evicted as i64)),
            ]))
        }
    }
}

/// The single-threaded cold oracle: answers `req` with a fresh
/// unbounded pool, no chaos, one worker thread. The chaos suite asserts
/// the concurrent daemon's frames are byte-identical to this.
#[must_use]
pub fn oracle(req: &Request) -> String {
    let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
    let ctx = QueryContext {
        pool: &pool,
        interrupt: None,
        threads: Some(1),
    };
    match execute(req, &ctx) {
        Ok(frame) => frame.to_line(),
        Err(e) => e.to_frame().to_line(),
    }
}

fn parse_checked_formula(text: &str) -> Result<Formula, ServeError> {
    parse_formula(text).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Downgrades a `symmetry:true` spec to unreduced when the formula is
/// not processor-symmetric (the quotient only preserves verdicts for
/// symmetric formulas — DESIGN.md §4i), noting the fallback in the
/// response. Parsed formulas cannot reference engine-registered state
/// sets, so the family orbit-closure oracle is never consulted.
fn effective_spec(
    spec: &ScenarioSpec,
    formula: &Formula,
    fields: &mut Vec<(&'static str, Json)>,
) -> ScenarioSpec {
    let mut spec = *spec;
    if spec.symmetry && !formula.symmetric_under_relabeling(&mut |_| true) {
        spec.symmetry = false;
        fields.push((
            "symmetry",
            Json::Str("formula names specific processors; checked unreduced".into()),
        ));
    }
    spec
}

/// Appends the orbit-accounting field for quotiented systems.
fn symmetry_fields(system: &GeneratedSystem, fields: &mut Vec<(&'static str, Json)>) {
    if let Some(info) = system.symmetry() {
        fields.push((
            "symmetry",
            Json::obj([
                ("orbits", Json::Int(info.num_orbits() as i64)),
                (
                    "raw_patterns",
                    Json::Int(info.raw_patterns_covered() as i64),
                ),
                (
                    "reduction",
                    Json::Str(format!("{:.2}", info.reduction_ratio())),
                ),
            ]),
        ));
    }
}

fn describe_point(system: &GeneratedSystem, run: eba_sim::RunId, time: Time) -> String {
    let record = system.run(run);
    format!(
        "run {} at {time}: config {} under [{}] (nonfaulty {})",
        run.index(),
        record.config,
        record.pattern,
        record.nonfaulty,
    )
}

/// The VALID/NOT-VALID core shared by checks and sweep horizons:
/// evaluates `formula` over every point and appends the verdict fields.
fn verdict_fields(
    eval: &mut Evaluator<'_>,
    system: &GeneratedSystem,
    formula: &Formula,
    witness: bool,
    fields: &mut Vec<(&'static str, Json)>,
) -> bool {
    let satisfied = eval.eval(formula);
    let holds = satisfied.count_ones();
    let points = satisfied.len();
    let valid = holds == points;
    fields.push(("valid", Json::Bool(valid)));
    fields.push(("holds", Json::Int(holds as i64)));
    fields.push(("points", Json::Int(points as i64)));
    if !valid {
        if let Some((run, time)) = eval.counterexample(formula) {
            fields.push((
                "counterexample",
                Json::Str(describe_point(system, run, time)),
            ));
        }
    }
    if witness {
        match satisfied.first_one() {
            Some(idx) => {
                let (run, time) = eval.point_of(idx);
                fields.push(("witness", Json::Str(describe_point(system, run, time))));
            }
            None => fields.push(("witness", Json::Null)),
        }
    }
    valid
}

fn run_check(check: &CheckRequest, ctx: &QueryContext<'_>) -> Result<Json, ServeError> {
    let formula = parse_checked_formula(&check.formula)?;
    let scenario = check.spec.scenario()?;
    let budgeted = check.deadline_ms.is_some() || check.max_runs.is_some();
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("check".into())),
        ("scenario", Json::Str(scenario.to_string())),
    ];
    let spec = effective_spec(&check.spec, &formula, &mut fields);

    if budgeted {
        // Budgeted checks bypass the pool: a prefix system is a valid
        // object to check but must never be served to later queries.
        let mut budget = RunBudget::unlimited();
        if let Some(ms) = check.deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(max) = check.max_runs {
            budget = budget.with_max_runs(max);
        }
        let outcome =
            ctx.pool
                .build_budgeted(&spec, budget, ctx.interrupt, check.shards, ctx.threads)?;
        let (system, partial) = match outcome {
            BuildOutcome::Complete { system, .. } => (system, None),
            BuildOutcome::Partial {
                system,
                completed_shards,
                total_shards,
                budget_hit,
                ..
            } => {
                if system.num_runs() == 0 {
                    return Err(ServeError::BudgetExhausted(format!(
                        "budget exhausted before any shard completed ({budget_hit}); \
                         raise deadline_ms/max_runs"
                    )));
                }
                (system, Some((budget_hit, completed_shards, total_shards)))
            }
        };
        fields.push(("runs", Json::Int(system.num_runs() as i64)));
        symmetry_fields(&system, &mut fields);
        if let Some((hit, completed, total)) = partial {
            fields.push((
                "partial",
                Json::obj([
                    ("reason", Json::Str(hit.to_string())),
                    ("completed_shards", Json::Int(completed as i64)),
                    ("total_shards", Json::Int(total as i64)),
                ]),
            ));
        }
        let mut eval = Evaluator::with_cache(
            &system,
            eba_kripke::KnowledgeCache::with_repr(spec.set_repr),
        );
        if let Some(threads) = ctx.threads {
            eval.set_threads(threads);
        }
        verdict_fields(&mut eval, &system, &formula, check.witness, &mut fields);
        return Ok(Json::obj(fields));
    }

    let (session, _hit) = ctx.pool.checkout(PoolKey { spec })?;
    fields.push(("runs", Json::Int(session.system().num_runs() as i64)));
    symmetry_fields(session.system(), &mut fields);
    let mut eval = session.evaluator();
    if let Some(threads) = ctx.threads {
        eval.set_threads(threads);
    }
    verdict_fields(
        &mut eval,
        session.system(),
        &formula,
        check.witness,
        &mut fields,
    );
    Ok(Json::obj(fields))
}

fn run_optimize(spec: &ScenarioSpec, ctx: &QueryContext<'_>) -> Result<Json, ServeError> {
    let scenario = spec.scenario()?;
    // The optimization and the Theorem 5.3 check are processor-covariant
    // end to end (the engine twists its belief kernels family-wise under
    // the quotient), so `symmetry:true` needs no formula-eligibility
    // fallback here.
    let (session, _hit) = ctx.pool.checkout(PoolKey { spec: *spec })?;
    let mut ctor = session.constructor();
    let pair = ctor.optimize(&DecisionPair::empty(spec.n));
    let optimal = check_optimality(&mut ctor, &pair).is_optimal();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("optimize".into())),
        ("scenario", Json::Str(scenario.to_string())),
        ("runs", Json::Int(session.system().num_runs() as i64)),
        ("points", Json::Int(session.system().num_points() as i64)),
    ];
    symmetry_fields(session.system(), &mut fields);
    fields.push(("optimal", Json::Bool(optimal)));
    Ok(Json::obj(fields))
}

fn run_sweep(sweep: &SweepRequest, ctx: &QueryContext<'_>) -> Result<Json, ServeError> {
    let formula = parse_checked_formula(&sweep.formula)?;
    let mut base_spec = sweep.spec;
    base_spec.horizon = sweep.from;
    base_spec.sampled = None;
    let scenario = base_spec.scenario()?;
    let mut notice: Vec<(&'static str, Json)> = Vec::new();
    let base_spec = effective_spec(&base_spec, &formula, &mut notice);

    // Warm start: clone the pooled base system (cheap — the point store
    // is behind an Arc) into a private session that this query alone
    // extends. The pooled entry stays immutable at its own horizon.
    let (base, _hit) = ctx.pool.checkout(PoolKey { spec: base_spec })?;
    let mut session = EngineSession::from_system_with_repr(
        base.system().clone(),
        SessionScope::FullSpace,
        base_spec.set_repr,
    );
    if let Some(threads) = ctx.threads {
        session.set_threads(threads);
    }

    let mut horizons = Vec::new();
    let mut all_valid = true;
    let mut interrupted = false;
    for h in sweep.from..=sweep.to {
        if let Some(flag) = ctx.interrupt {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                interrupted = true;
                break;
            }
        }
        if h > sweep.from {
            session
                .extend_to(h)
                .map_err(|e| ServeError::InvalidScenario(e.to_string()))?;
        }
        let mut fields: Vec<(&'static str, Json)> = vec![("horizon", Json::Int(i64::from(h)))];
        fields.push(("runs", Json::Int(session.system().num_runs() as i64)));
        symmetry_fields(session.system(), &mut fields);
        let mut eval = session.evaluator();
        if let Some(threads) = ctx.threads {
            eval.set_threads(threads);
        }
        all_valid &= verdict_fields(&mut eval, session.system(), &formula, false, &mut fields);
        horizons.push(Json::Obj(
            fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        ));
    }
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("sweep".into())),
        ("scenario", Json::Str(scenario.to_string())),
    ];
    fields.extend(notice);
    fields.push(("horizons", Json::Arr(horizons)));
    fields.push(("valid", Json::Bool(all_valid)));
    if interrupted {
        fields.push(("partial", Json::Str("interrupted".into())));
    }
    Ok(Json::obj(fields))
}

fn render_stats(pool: &SessionPool) -> Json {
    let stats = pool.stats();
    let pooled: Vec<Json> = pool
        .sessions()
        .into_iter()
        .map(|info| {
            let scenario = info
                .key
                .spec
                .scenario()
                .expect("pooled specs are validated at build");
            let symmetry = match info.symmetry {
                Some(snap) => Json::obj([
                    ("orbits", Json::Int(snap.orbits as i64)),
                    ("raw_patterns", Json::Int(snap.raw_patterns as i64)),
                    ("reduction", Json::Str(format!("{:.2}", snap.reduction))),
                ]),
                None => Json::Null,
            };
            Json::obj([
                ("scenario", Json::Str(scenario.to_string())),
                ("runs", Json::Int(info.runs as i64)),
                ("symmetry", symmetry),
                ("set_repr", Json::Str(info.key.spec.set_repr.to_string())),
                ("cache_nodes", Json::Int(info.cache.nodes as i64)),
                ("cache_node_memo_hits", Json::Int(info.cache.node_memo_hits as i64)),
                (
                    "cache_node_dedup_ratio",
                    Json::Str(format!("{:.2}", info.cache.node_dedup_ratio())),
                ),
            ])
        })
        .collect();
    let sched = eba_sim::scheduler_stats();
    let scheduler = Json::obj([
        ("pools", Json::Int(sched.pools as i64)),
        ("items", Json::Int(sched.items as i64)),
        ("steals", Json::Int(sched.steals as i64)),
        ("last_workers", Json::Int(sched.last_workers as i64)),
        ("last_items_max", Json::Int(sched.last_items_max as i64)),
        ("last_items_min", Json::Int(sched.last_items_min as i64)),
        ("last_span_max_us", Json::Int(sched.last_span_max_us as i64)),
        ("last_span_min_us", Json::Int(sched.last_span_min_us as i64)),
    ]);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::Str("stats".into())),
        ("sessions", Json::Int(stats.sessions as i64)),
        ("resident_bytes", Json::Int(stats.resident_bytes as i64)),
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
        ("evictions", Json::Int(stats.evictions as i64)),
        ("retries", Json::Int(stats.retries as i64)),
        ("scheduler", scheduler),
        ("pooled", Json::Arr(pooled)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(pool: &'a SessionPool) -> QueryContext<'a> {
        QueryContext {
            pool,
            interrupt: None,
            threads: Some(1),
        }
    }

    fn run(pool: &SessionPool, line: &str) -> String {
        let req = match Request::from_line(line) {
            Ok(req) => req,
            Err(e) => return e.to_frame().to_line(),
        };
        match execute(&req, &ctx_with(pool)) {
            Ok(frame) => frame.to_line(),
            Err(e) => e.to_frame().to_line(),
        }
    }

    #[test]
    fn check_valid_and_invalid_formulas() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let valid = run(&pool, r#"{"op":"check","formula":"CC(E0) -> C(E0)"}"#);
        assert!(valid.contains(r#""valid":true"#), "{valid}");
        let invalid = run(&pool, r#"{"op":"check","formula":"C(E0) -> CC(E0)"}"#);
        assert!(invalid.contains(r#""valid":false"#), "{invalid}");
        assert!(invalid.contains("counterexample"), "{invalid}");
        // Both answers came off one pooled session.
        assert_eq!(pool.stats().sessions, 1);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn responses_are_deterministic_and_match_the_oracle() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        for line in [
            r#"{"op":"check","formula":"CC(E0) -> C(E0)","witness":true}"#,
            r#"{"op":"check","formula":"C(E0) -> CC(E0)","mode":"omission","horizon":2}"#,
            r#"{"op":"optimize","n":3,"t":1,"mode":"crash","horizon":3}"#,
            r#"{"op":"sweep","formula":"CC(E0) -> C(E0)","from":2,"to":3}"#,
        ] {
            let warm = run(&pool, line);
            let again = run(&pool, line);
            let cold = oracle(&Request::from_line(line).unwrap());
            assert_eq!(warm, again, "non-deterministic: {line}");
            assert_eq!(warm, cold, "oracle mismatch: {line}");
        }
    }

    #[test]
    fn budgeted_check_returns_a_deterministic_partial() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let line = r#"{"op":"check","formula":"true","mode":"omission","horizon":2,
                       "shards":64,"max_runs":50}"#;
        let a = run(&pool, line);
        let b = oracle(&Request::from_line(line).unwrap());
        assert_eq!(a, b);
        assert!(
            a.contains(r#""partial":{"reason":"run budget of 50 exhausted""#),
            "{a}"
        );
        assert!(
            pool.stats().sessions == 0,
            "partial systems must not be pooled"
        );
    }

    #[test]
    fn budget_exhausted_before_any_shard_is_a_typed_error() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        // max_runs=1 with one shard: the single shard exceeds the budget.
        let line = r#"{"op":"check","formula":"true","shards":1,"max_runs":1}"#;
        let resp = run(&pool, line);
        assert!(resp.contains(r#""error":"budget-exhausted""#), "{resp}");
    }

    #[test]
    fn sweep_horizons_match_individual_checks() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let sweep = run(
            &pool,
            r#"{"op":"sweep","formula":"CC(E0) -> C(E0)","from":2,"to":4}"#,
        );
        assert!(sweep.contains(r#""valid":true"#), "{sweep}");
        // Each horizon's runs/points must equal a direct check's.
        for h in 2..=4 {
            let single = run(
                &pool,
                &format!(r#"{{"op":"check","formula":"CC(E0) -> C(E0)","horizon":{h}}}"#),
            );
            let runs = single
                .split(r#""runs":"#)
                .nth(1)
                .and_then(|s| s.split(',').next())
                .unwrap()
                .to_owned();
            assert!(
                sweep.contains(&format!(r#""horizon":{h},"runs":{runs}"#)),
                "horizon {h}: {sweep} vs {single}"
            );
        }
    }

    #[test]
    fn symmetry_quotient_matches_the_unreduced_verdict_and_reports_orbits() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let line = r#"{"op":"check","formula":"C(E0) -> CC(E0)","mode":"omission","horizon":2"#;
        let quotiented = run(&pool, &format!(r#"{line},"symmetry":true}}"#));
        let unreduced = run(&pool, &format!("{line}}}"));
        assert!(quotiented.contains(r#""valid":false"#), "{quotiented}");
        assert!(unreduced.contains(r#""valid":false"#), "{unreduced}");
        assert!(
            quotiented.contains(r#""symmetry":{"orbits":"#),
            "{quotiented}"
        );
        assert!(
            pool.stats().sessions == 2,
            "quotiented and unreduced sessions must not alias"
        );
        // The stats frame carries the per-session orbit accounting.
        let stats = run(&pool, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""pooled":["#), "{stats}");
        assert!(stats.contains(r#""orbits":"#), "{stats}");
        assert!(stats.contains(r#""reduction":"#), "{stats}");
        assert!(stats.contains(r#""symmetry":null"#), "{stats}");
    }

    #[test]
    fn asymmetric_formulas_fall_back_to_the_unreduced_system() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let resp = run(
            &pool,
            r#"{"op":"check","formula":"K_1(E0) -> E0","symmetry":true}"#,
        );
        assert!(resp.contains("checked unreduced"), "{resp}");
        assert!(resp.contains(r#""valid":true"#), "{resp}");
        // The pooled session is the unreduced one — a later unreduced
        // query for the same scenario hits it.
        let (_, hit) = pool
            .checkout(PoolKey {
                spec: ScenarioSpec {
                    n: 3,
                    t: 1,
                    mode: eba_model::FailureMode::Crash,
                    exchange: eba_model::ExchangeKind::FullInformation,
                    horizon: 3,
                    sampled: None,
                    symmetry: false,
                    set_repr: eba_kripke::SetReprKind::Dense,
                },
            })
            .unwrap();
        assert!(hit);
    }

    #[test]
    fn quotiented_optimize_agrees_with_the_unreduced_verdict() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        let quotiented = run(&pool, r#"{"op":"optimize","symmetry":true}"#);
        let unreduced = run(&pool, r#"{"op":"optimize"}"#);
        assert!(quotiented.contains(r#""optimal":true"#), "{quotiented}");
        assert!(unreduced.contains(r#""optimal":true"#), "{unreduced}");
        assert!(
            quotiented.contains(r#""symmetry":{"orbits":"#),
            "{quotiented}"
        );
    }

    #[test]
    fn stats_and_evict_round_trip() {
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), None);
        run(&pool, r#"{"op":"check","formula":"true"}"#);
        let stats = run(&pool, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""sessions":1"#), "{stats}");
        assert!(stats.contains(r#""resident_bytes":"#), "{stats}");
        assert!(stats.contains(r#""scheduler":{"pools":"#), "{stats}");
        let evicted = run(&pool, r#"{"op":"evict"}"#);
        assert!(evicted.contains(r#""evicted":1"#), "{evicted}");
        let stats = run(&pool, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""sessions":0"#), "{stats}");
    }
}
