//! Proposition 2.1: there is no optimum EBA protocol.
//!
//! The proof exhibits `P0` and `P1`: all 0-holders decide at time 0 in
//! `P0` and all 1-holders at time 0 in `P1`, so an optimum protocol would
//! decide everything at time 0, contradicting the `t + 1` lower bound of
//! \[DS82\]. We verify the witness structure mechanically.

use eba::prelude::*;
use eba_protocols::runner::run_exhaustive;
use eba_protocols::Relay;
use eba_sim::execute_unchecked as execute;

fn decision_table(
    protocol: &Relay,
    scenario: &Scenario,
) -> Vec<(InitialConfig, FailurePattern, Vec<Option<Time>>)> {
    let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
    let mut out = Vec::new();
    for pattern in eba_model::enumerate::patterns(scenario) {
        for config in &configs {
            let trace = execute(protocol, config, &pattern, scenario.horizon());
            let times: Vec<Option<Time>> = ProcessorId::all(scenario.n())
                .map(|p| trace.decision_time(p))
                .collect();
            out.push((config.clone(), pattern.clone(), times));
        }
    }
    out
}

#[test]
fn p0_and_p1_are_both_eba_protocols() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    for protocol in [Relay::p0(1), Relay::p1(1)] {
        let report = run_exhaustive(&protocol, &scenario);
        assert!(report.live(), "{report}");
    }
}

#[test]
fn holders_of_the_favored_value_decide_at_time_zero() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    for (protocol, favored) in [(Relay::p0(1), Value::Zero), (Relay::p1(1), Value::One)] {
        for (config, _pattern, times) in decision_table(&protocol, &scenario) {
            for p in ProcessorId::all(3) {
                if config.value(p) == favored {
                    assert_eq!(times[p.index()], Some(Time::ZERO));
                }
            }
        }
    }
}

/// Neither relay protocol dominates the other: each is strictly faster on
/// its favored configurations, so no protocol dominating both can exist
/// without deciding everything at time 0.
#[test]
fn neither_p0_nor_p1_dominates_the_other() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let t0 = decision_table(&Relay::p0(1), &scenario);
    let t1 = decision_table(&Relay::p1(1), &scenario);

    let mut p0_beats = false;
    let mut p1_beats = false;
    for ((config, pattern, a), (_, _, b)) in t0.iter().zip(&t1) {
        let nonfaulty = pattern.nonfaulty_set();
        let _ = config;
        for p in nonfaulty {
            match (a[p.index()], b[p.index()]) {
                (Some(ta), Some(tb)) => {
                    p0_beats |= ta < tb;
                    p1_beats |= tb < ta;
                }
                _ => panic!("both protocols decide within the horizon"),
            }
        }
    }
    assert!(p0_beats && p1_beats);
}

/// The \[DS82\] side of the argument: in *every* EBA protocol some run
/// forces a `t + 1`-round decision. We check it for our implemented
/// protocols: under the silence-chain adversary some nonfaulty processor
/// takes at least `t + 1` rounds.
#[test]
fn silence_chain_forces_t_plus_one_rounds() {
    let t: usize = 2;
    let scenario = Scenario::new(5, t, FailureMode::Crash, 4).unwrap();
    let chain =
        eba_model::sample::silence_chain(&scenario, &[ProcessorId::new(0), ProcessorId::new(1)]);
    // p0 holds the only 0 and whispers it down a dying chain; survivors
    // must wait out the full t + 1 rounds before deciding 1.
    let config = InitialConfig::from_bits(5, 0b11110);
    for (name, times) in [
        ("P0", {
            let trace = execute(&Relay::p0(t), &config, &chain, scenario.horizon());
            trace
                .nonfaulty()
                .iter()
                .map(|p| trace.decision_time(p))
                .collect::<Vec<_>>()
        }),
        ("P0opt", {
            let trace = execute(
                &eba_protocols::P0Opt::new(t),
                &config,
                &chain,
                scenario.horizon(),
            );
            trace
                .nonfaulty()
                .iter()
                .map(|p| trace.decision_time(p))
                .collect::<Vec<_>>()
        }),
    ] {
        let max = times.iter().map(|t| t.expect("decides")).max().unwrap();
        assert!(
            max >= Time::new(t as u16 + 1),
            "{name}: expected ≥ t+1 = {}, got {max}",
            t + 1
        );
    }
}
