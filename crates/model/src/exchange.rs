//! Information-exchange descriptors.
//!
//! The paper analyzes *full-information* protocols: every processor
//! sends its entire local state to everyone in every round, so the local
//! state at time `m` is the full view tree of Section 2.4. The follow-up
//! literature on limited information exchange (van der Meyden,
//! arXiv 2508.03418; Alpturer–Ruj, arXiv 2511.22380) shows that
//! bounded-size message digests — fixed-size who-heard-what summaries —
//! preserve the optimality structure the knowledge machinery checks,
//! while keeping the per-processor state space *bounded in the horizon*.
//!
//! [`ExchangeKind`] is the model-level descriptor of which exchange a
//! scenario runs: it is part of the [`crate::Scenario`] identity, so
//! systems generated under different exchanges never compare equal, never
//! extend into each other, and never share knowledge-cache entries (the
//! kripke layer keys caches by [`ExchangeKind::fingerprint`]). The sim
//! layer maps the descriptor to an executable exchange implementation.

use crate::ModelError;
use std::fmt;

/// Which information exchange a scenario's processors run; see the
/// module docs. The default ([`ExchangeKind::FullInformation`]) is the
/// paper's FIP and preserves every prior behavior of the engine.
///
/// # Example
///
/// ```
/// use eba_model::ExchangeKind;
///
/// let digest = ExchangeKind::parse("digest:32").unwrap();
/// assert_eq!(digest, ExchangeKind::Digest { bits: 32 });
/// assert!(!digest.is_full());
/// assert_eq!(ExchangeKind::parse("full").unwrap(), ExchangeKind::default());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ExchangeKind {
    /// The paper's full-information protocol: the round message is the
    /// entire local state, and the interned state is the full view tree.
    #[default]
    FullInformation,
    /// A bounded digest exchange: the round message and the interned
    /// state are a fixed-size who-heard-what summary (per-processor
    /// knowledge sets) plus an optional content fingerprint truncated to
    /// `bits` bits. `bits = 0` keeps the pure bounded summary; larger
    /// `bits` makes state identity finer (at 64 bits, collisions are
    /// negligible) at the cost of a state space that can grow with the
    /// horizon again.
    Digest {
        /// Fingerprint width in bits, `0..=64`.
        bits: u8,
    },
}

/// The widest digest fingerprint (the full 64-bit content hash).
pub const MAX_DIGEST_BITS: u8 = 64;

impl ExchangeKind {
    /// A digest exchange with a validated fingerprint width.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `bits > 64`.
    pub fn digest(bits: u8) -> Result<Self, ModelError> {
        if bits > MAX_DIGEST_BITS {
            return Err(ModelError::invalid_scenario(format!(
                "digest fingerprint width {bits} exceeds the maximum of {MAX_DIGEST_BITS} bits"
            )));
        }
        Ok(ExchangeKind::Digest { bits })
    }

    /// Parses the CLI spelling: `full` or `digest:<bits>`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] on any other spelling or
    /// an out-of-range width.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        if spec == "full" {
            return Ok(ExchangeKind::FullInformation);
        }
        if let Some(bits) = spec.strip_prefix("digest:") {
            let bits: u8 = bits.parse().map_err(|_| {
                ModelError::invalid_scenario(format!(
                    "bad digest fingerprint width `{bits}` (want 0..={MAX_DIGEST_BITS})"
                ))
            })?;
            return ExchangeKind::digest(bits);
        }
        Err(ModelError::invalid_scenario(format!(
            "unknown exchange `{spec}` (want `full` or `digest:<bits>`)"
        )))
    }

    /// Whether this is the paper's full-information exchange.
    #[must_use]
    pub fn is_full(self) -> bool {
        matches!(self, ExchangeKind::FullInformation)
    }

    /// Whether the incremental engine's append-only session extension
    /// ([`crate::Scenario::extend_horizon`] and everything built on it)
    /// is supported for this exchange.
    ///
    /// This is a **validation boundary, not a mathematical limit**: any
    /// exchange defined by a leaf and a per-round step extends soundly by
    /// replaying appended rounds. The sweep's byte-identical-to-cold
    /// contract, however, is certified by the differential suites only
    /// for exchanges whose interned state identity carries no truncated
    /// fingerprint — full information and `digest:0`. Fingerprinted
    /// digests (`bits > 0`) are conservatively rebuild-only until their
    /// extension path earns the same differential coverage.
    #[must_use]
    pub fn supports_session_extension(self) -> bool {
        match self {
            ExchangeKind::FullInformation => true,
            ExchangeKind::Digest { bits } => bits == 0,
        }
    }

    /// A deterministic content fingerprint of the descriptor itself,
    /// mixed into every knowledge-cache content key so systems generated
    /// under different exchanges never share entries (their interned
    /// state spaces are unrelated even when point counts coincide).
    #[must_use]
    pub fn fingerprint(self) -> u64 {
        // Fixed tags, stable across processes and releases; the digest
        // arm separates widths so digest:0 and digest:64 never collide.
        match self {
            ExchangeKind::FullInformation => 0x4649_5000_0000_0000, // "FIP"
            ExchangeKind::Digest { bits } => 0x4447_5400_0000_0000 | u64::from(bits),
        }
    }
}

impl fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeKind::FullInformation => write!(f, "full"),
            ExchangeKind::Digest { bits } => write!(f, "digest:{bits}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_with_display() {
        for spec in ["full", "digest:0", "digest:32", "digest:64"] {
            let kind = ExchangeKind::parse(spec).unwrap();
            assert_eq!(kind.to_string(), spec);
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(ExchangeKind::parse("digest").is_err());
        assert!(ExchangeKind::parse("digest:65").is_err());
        assert!(ExchangeKind::parse("digest:x").is_err());
        assert!(ExchangeKind::parse("views").is_err());
        assert!(ExchangeKind::digest(65).is_err());
    }

    #[test]
    fn default_is_full_information() {
        assert_eq!(ExchangeKind::default(), ExchangeKind::FullInformation);
        assert!(ExchangeKind::FullInformation.is_full());
        assert!(!ExchangeKind::Digest { bits: 0 }.is_full());
    }

    #[test]
    fn session_extension_policy() {
        assert!(ExchangeKind::FullInformation.supports_session_extension());
        assert!(ExchangeKind::Digest { bits: 0 }.supports_session_extension());
        assert!(!ExchangeKind::Digest { bits: 1 }.supports_session_extension());
        assert!(!ExchangeKind::Digest { bits: 64 }.supports_session_extension());
    }

    #[test]
    fn fingerprints_are_distinct_per_exchange() {
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(ExchangeKind::FullInformation.fingerprint()));
        for bits in 0..=MAX_DIGEST_BITS {
            assert!(seen.insert(ExchangeKind::Digest { bits }.fingerprint()));
        }
    }
}
