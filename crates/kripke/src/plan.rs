//! Compiled evaluation plans: formulas lowered to a DAG of dense-bitset
//! kernels executed over the columnar point store.
//!
//! The recursive [`Evaluator`](crate::Evaluator) walks a [`Formula`] tree
//! and materializes one bitset per node, recomputing knowledge closures
//! with a per-point scan and hash lookups. A [`FormulaPlan`] performs the
//! same computation as a flat program:
//!
//! 1. **Lowering** ([`FormulaPlan::compile`]) turns the tree into a
//!    post-order list of [`Kernel`]s, *deduplicating* structurally equal
//!    subformulas — `φ ∨ ¬φ` evaluates `φ` once — so the plan is a DAG
//!    rather than a tree.
//! 2. **Execution** ([`Evaluator::eval_plan`](crate::Evaluator::eval_plan))
//!    runs the kernels in order. Knowledge kernels walk the precomputed
//!    CSR bucket partitions of the [`eba_sim::PointStore`] (all points
//!    sharing one processor's view are contiguous), and the group
//!    operators `E_S`/`S_S` fold per-processor results with word-level
//!    bitset ops ([`Bitset::and_implication`] / [`Bitset::or_conjunction`])
//!    against cached per-processor *scope columns*.
//! 3. **Fixpoints** run as the [`Kernel::GfpIter`] loop: `X ← E_S(φ ∧ X)`
//!    iterated natively on bitsets, with no per-iteration formula
//!    construction, hashing, or point-predicate registration. This is
//!    what [`crate::fixpoint`] uses in plan mode.
//!
//! Every kernel is implemented to be extensionally *identical* to the
//! recursive evaluator — same bits, not just same truth values — and the
//! `Bitset` representation is canonical, so equality is bit-identity.
//! The differential suite in `tests/plan_equivalence.rs` enforces this on
//! random formulas; the recursive path remains available via
//! [`Evaluator::set_plan_mode`](crate::Evaluator::set_plan_mode) as the
//! reference oracle.
//!
//! Plan results are recorded in the evaluator's formula-keyed memo for
//! the nodes worth remembering — leaves, knowledge/reachability closures,
//! temporal folds, and the root — so mixing plan and recursive evaluation
//! on one evaluator is safe and cache-coherent. Interior `Not`/`And`/`Or`
//! nodes are *not* memoized: their kernels are a handful of word ops,
//! cheaper than hashing their (large) formulas as cache keys. The other
//! exception is `GfpIter`: its result provably equals `C_S φ` / `C□_S φ`,
//! but caching it under that key would let the fixpoint result mask the
//! reachability-based one (or vice versa) and silently weaken
//! differential tests, so gfp nodes are never memoized.

use crate::bitset::Bitset;
use crate::eval::Evaluator;
use crate::fixpoint::GfpInterrupt;
use crate::formula::Formula;
use crate::nonrigid::NonRigidSet;
use crate::setrepr::{NodeOp, NodeTable, SharedWords};
use eba_model::fasthash::FastMap;
use eba_model::{ArmedBudget, ProcessorId, RunBudget};
use std::sync::{Arc, Mutex};

/// Which knowledge closure a [`Kernel::KnowClose`] computes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KnowKind {
    /// `K_p φ` — knowledge of processor `p`.
    Knows(ProcessorId),
    /// `B^S_p φ` — belief of `p` relative to the nonrigid set `S`.
    Believes(ProcessorId, NonRigidSet),
    /// `E_S φ` — every member of `S` believes `φ`.
    Everyone(NonRigidSet),
    /// `S_S φ` — some member of `S` believes `φ`.
    Someone(NonRigidSet),
    /// `D_S φ` — distributed knowledge of `S`.
    Distributed(NonRigidSet),
}

/// Which per-run temporal fold a [`Kernel::Temporal`] computes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TemporalOp {
    /// `□φ` — at every time from now on.
    Always,
    /// `◇φ` — at some time from now on.
    Eventually,
    /// `□̄φ` — at every time of the run.
    AlwaysAll,
    /// `◇̄φ` — at some time of the run.
    SometimeAll,
}

/// One node of a compiled plan. Inputs are indices of earlier nodes
/// (plans are in topological order by construction).
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Evaluate a leaf formula (`True`, `∃v`, `init`, registered
    /// predicates, …) directly into a bitset.
    Load,
    /// Pointwise complement of the input.
    Not(u32),
    /// Pointwise conjunction of the inputs (empty = all-true).
    And(Vec<u32>),
    /// Pointwise disjunction of the inputs (empty = all-false).
    Or(Vec<u32>),
    /// A knowledge closure over the CSR bucket partition of the point
    /// store; see [`KnowKind`].
    KnowClose {
        /// Which closure to compute.
        kind: KnowKind,
        /// The node holding `φ`.
        input: u32,
    },
    /// `C_S φ` (or `C□_S φ` when `continual`) via the union-find
    /// reachability components of `S`.
    ReachClose {
        /// The nonrigid set `S`.
        set: NonRigidSet,
        /// `false` computes `C_S`, `true` computes `C□_S`.
        continual: bool,
        /// The node holding `φ`.
        input: u32,
    },
    /// A per-run temporal fold; see [`TemporalOp`].
    Temporal {
        /// Which fold to compute.
        op: TemporalOp,
        /// The node holding `φ`.
        input: u32,
    },
    /// The greatest-fixed-point loop `X ← E_S(φ ∧ X)` (boxed:
    /// `X ← □̄ E_S(φ ∧ X)`) from `X = True`, run natively on bitsets.
    GfpIter {
        /// The nonrigid set `S`.
        set: NonRigidSet,
        /// Whether each step is boxed (`E□_S`, yielding `C□_S`).
        boxed: bool,
        /// The node holding `φ`.
        input: u32,
    },
}

/// A formula compiled to a deduplicated DAG of bitset kernels; see the
/// module docs.
///
/// # Example
///
/// ```
/// use eba_kripke::{Evaluator, Formula, FormulaPlan};
/// use eba_model::{FailureMode, Scenario, Value};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let phi = Formula::exists(Value::Zero);
/// // φ ∨ ¬φ: three kernels (φ is shared), not four.
/// let plan = FormulaPlan::compile(&phi.clone().or(phi.not()));
/// assert_eq!(plan.len(), 3);
/// let mut eval = Evaluator::new(&system);
/// assert!(eval.eval_plan(&plan).all());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FormulaPlan {
    kernels: Vec<Kernel>,
    /// Per node: the subformula it computes, used as the evaluator's memo
    /// key — or `None` for nodes that skip the memo (cheap word-level
    /// boolean ops, and gfp nodes which must never be memoized).
    formulas: Vec<Option<Formula>>,
}

/// The structural identity of a plan node: its operator plus the ids of
/// its already-lowered inputs. Keying the compile-time memo on this
/// instead of the `Formula` makes dedup `O(1)` hashing per node (child
/// ids, not whole subtrees); since leaves are keyed by their (shallow)
/// formula, equal keys coincide with structurally equal subformulas.
#[derive(PartialEq, Eq, Hash)]
enum NodeKey {
    Leaf(Formula),
    Not(u32),
    And(Vec<u32>),
    Or(Vec<u32>),
    Know(KnowKind, u32),
    Reach(NonRigidSet, bool, u32),
    Temporal(TemporalOp, u32),
}

impl FormulaPlan {
    /// Lowers a formula into a plan whose last node computes it.
    #[must_use]
    pub fn compile(root: &Formula) -> Self {
        let mut plan = FormulaPlan {
            kernels: Vec::new(),
            formulas: Vec::new(),
        };
        let mut memo = FastMap::default();
        let root_id = plan.lower(root, &mut memo) as usize;
        debug_assert_eq!(root_id + 1, plan.kernels.len());
        // The root always participates in the evaluator's memo, even when
        // it is a boolean node, so re-evaluating the same formula hits
        // the cache instead of re-running the plan.
        if plan.formulas[root_id].is_none() {
            plan.formulas[root_id] = Some(root.clone());
        }
        plan
    }

    /// Lowers `φ` and appends a [`Kernel::GfpIter`] root computing the
    /// greatest fixed point of `X ← E_S(φ ∧ X)` (boxed: `E□_S`) — that
    /// is, `C_S φ` (`C□_S φ`) by iteration rather than reachability.
    #[must_use]
    pub fn compile_gfp(s: NonRigidSet, phi: &Formula, boxed: bool) -> Self {
        let mut plan = FormulaPlan {
            kernels: Vec::new(),
            formulas: Vec::new(),
        };
        let mut memo = FastMap::default();
        let input = plan.lower(phi, &mut memo);
        plan.kernels.push(Kernel::GfpIter {
            set: s,
            boxed,
            input,
        });
        plan.formulas.push(None);
        plan
    }

    /// Number of kernels (deduplicated nodes) in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the plan has no kernels (never true for compiled plans).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The kernels in execution (topological) order; the last is the
    /// root.
    #[must_use]
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    fn lower(&mut self, f: &Formula, memo: &mut FastMap<NodeKey, u32>) -> u32 {
        // Children first, so the key is over already-deduplicated ids.
        // `memoize` marks nodes that participate in the evaluator's
        // formula-keyed result cache (see the module docs).
        let (key, memoize) = match f {
            Formula::True
            | Formula::False
            | Formula::Exists(_)
            | Formula::Initial(..)
            | Formula::Nonfaulty(_)
            | Formula::StateIn(..)
            | Formula::RunPred(_)
            | Formula::PointPred(_) => (NodeKey::Leaf(f.clone()), true),
            Formula::Not(inner) => (NodeKey::Not(self.lower(inner, memo)), false),
            Formula::And(fs) => (
                NodeKey::And(fs.iter().map(|g| self.lower(g, memo)).collect()),
                false,
            ),
            Formula::Or(fs) => (
                NodeKey::Or(fs.iter().map(|g| self.lower(g, memo)).collect()),
                false,
            ),
            Formula::Knows(p, inner) => (
                NodeKey::Know(KnowKind::Knows(*p), self.lower(inner, memo)),
                true,
            ),
            Formula::Believes(p, s, inner) => (
                NodeKey::Know(KnowKind::Believes(*p, *s), self.lower(inner, memo)),
                true,
            ),
            Formula::Everyone(s, inner) => (
                NodeKey::Know(KnowKind::Everyone(*s), self.lower(inner, memo)),
                true,
            ),
            Formula::Someone(s, inner) => (
                NodeKey::Know(KnowKind::Someone(*s), self.lower(inner, memo)),
                true,
            ),
            Formula::Distributed(s, inner) => (
                NodeKey::Know(KnowKind::Distributed(*s), self.lower(inner, memo)),
                true,
            ),
            Formula::Common(s, inner) => (NodeKey::Reach(*s, false, self.lower(inner, memo)), true),
            Formula::ContinualCommon(s, inner) => {
                (NodeKey::Reach(*s, true, self.lower(inner, memo)), true)
            }
            Formula::Always(inner) => (
                NodeKey::Temporal(TemporalOp::Always, self.lower(inner, memo)),
                true,
            ),
            Formula::Eventually(inner) => (
                NodeKey::Temporal(TemporalOp::Eventually, self.lower(inner, memo)),
                true,
            ),
            Formula::AlwaysAll(inner) => (
                NodeKey::Temporal(TemporalOp::AlwaysAll, self.lower(inner, memo)),
                true,
            ),
            Formula::SometimeAll(inner) => (
                NodeKey::Temporal(TemporalOp::SometimeAll, self.lower(inner, memo)),
                true,
            ),
        };
        if let Some(&id) = memo.get(&key) {
            return id;
        }
        let kernel = match &key {
            NodeKey::Leaf(_) => Kernel::Load,
            NodeKey::Not(a) => Kernel::Not(*a),
            NodeKey::And(ids) => Kernel::And(ids.clone()),
            NodeKey::Or(ids) => Kernel::Or(ids.clone()),
            NodeKey::Know(kind, input) => Kernel::KnowClose {
                kind: *kind,
                input: *input,
            },
            NodeKey::Reach(set, continual, input) => Kernel::ReachClose {
                set: *set,
                continual: *continual,
                input: *input,
            },
            NodeKey::Temporal(op, input) => Kernel::Temporal {
                op: *op,
                input: *input,
            },
        };
        let id = u32::try_from(self.kernels.len()).expect("plan larger than the formula");
        self.kernels.push(kernel);
        self.formulas.push(memoize.then(|| f.clone()));
        memo.insert(key, id);
        id
    }
}

/// Executes a plan on an evaluator, serving and filling the evaluator's
/// formula-keyed memo per node; returns the root's extension.
///
/// Under the shared set-representation backend every node result is
/// additionally interned into the cache's [`NodeTable`] — near-identical
/// results across plans and evaluations collapse into shared structure —
/// and `And`/`Or` nodes whose operands are already interned are combined
/// through the memoized [`NodeTable::apply`] instead of re-interned word
/// by word. Interning never replaces the dense computation (results stay
/// bit-identical by construction); gfp nodes are exempt for the same
/// reason they skip the formula memo.
pub(crate) fn execute(eval: &mut Evaluator<'_>, plan: &FormulaPlan) -> Arc<Bitset> {
    if eval.batch_mode() {
        let mut batch = crate::reach::BatchBuilder::new();
        collect_plan_sets(plan, &mut batch);
        if !batch.is_empty() {
            batch.run(eval);
        }
    }
    let table = eval.shared.node_table().cloned();
    let mut results: Vec<Option<Arc<Bitset>>> = vec![None; plan.kernels.len()];
    let mut roots: Vec<Option<SharedWords>> = vec![None; plan.kernels.len()];
    for i in 0..plan.kernels.len() {
        if let Some(f) = &plan.formulas[i] {
            if let Some(cached) = eval.cache.get(f) {
                let arc = Arc::clone(cached);
                if let Some(table) = &table {
                    roots[i] = intern_plan_node(table, &plan.kernels[i], &roots, &arc);
                }
                results[i] = Some(arc);
                continue;
            }
        }
        let bits = run_kernel(eval, plan, i, &results);
        let arc = Arc::new(bits);
        if let Some(table) = &table {
            roots[i] = intern_plan_node(table, &plan.kernels[i], &roots, &arc);
        }
        if let Some(f) = &plan.formulas[i] {
            eval.cache.insert(f.clone(), Arc::clone(&arc));
        }
        results[i] = Some(arc);
    }
    results
        .pop()
        .flatten()
        .expect("compiled plans have at least one kernel")
}

/// Interns one plan node's dense result into the shared node table,
/// going through the memoized native combiner when every operand of an
/// `And`/`Or` node is already interned. The returned handle always
/// equals what interning the dense words produces (asserted in debug
/// builds): padding is closed under the ops and consing is canonical.
fn intern_plan_node(
    table: &Arc<Mutex<NodeTable>>,
    kernel: &Kernel,
    roots: &[Option<SharedWords>],
    bits: &Bitset,
) -> Option<SharedWords> {
    let mut table = table.lock().expect("node table poisoned");
    let fold = |table: &mut NodeTable, op: NodeOp, ids: &[u32]| -> SharedWords {
        let mut acc = roots[ids[0] as usize].expect("caller checked every operand is interned");
        for id in &ids[1..] {
            let rhs = roots[*id as usize].expect("caller checked every operand is interned");
            acc = table.apply(op, acc, rhs);
        }
        acc
    };
    let interned = match kernel {
        // Never interned, for the same reason gfp results are never
        // memoized: a canonical handle equal to the reachability-based
        // closure's would let one path mask the other in differential
        // tests.
        Kernel::GfpIter { .. } => return None,
        Kernel::And(ids)
            if !ids.is_empty() && ids.iter().all(|id| roots[*id as usize].is_some()) =>
        {
            let native = fold(&mut table, NodeOp::And, ids);
            debug_assert_eq!(
                native,
                table.intern_words(bits.words()),
                "native And must equal interning the dense result"
            );
            native
        }
        Kernel::Or(ids)
            if !ids.is_empty() && ids.iter().all(|id| roots[*id as usize].is_some()) =>
        {
            let native = fold(&mut table, NodeOp::Or, ids);
            debug_assert_eq!(
                native,
                table.intern_words(bits.words()),
                "native Or must equal interning the dense result"
            );
            native
        }
        _ => table.intern_words(bits.words()),
    };
    Some(interned)
}

/// Scans a plan's kernels for every nonrigid set they will resolve —
/// reachability for `ReachClose`, scope columns for scoped `KnowClose`
/// and `GfpIter` — and adds the requests to `batch`, so one
/// [`crate::reach::BatchBuilder`] sweep serves the whole plan before
/// execution starts. Sets already memoized cost one staged lookup each;
/// the rest share a single traversal of the point store instead of one
/// per set.
fn collect_plan_sets(plan: &FormulaPlan, batch: &mut crate::reach::BatchBuilder) {
    for kernel in &plan.kernels {
        match kernel {
            Kernel::ReachClose { set, .. } => batch.request_reachability(*set),
            Kernel::KnowClose { kind, .. } => match kind {
                KnowKind::Believes(_, s) | KnowKind::Everyone(s) | KnowKind::Someone(s) => {
                    batch.request_scopes(*s);
                }
                KnowKind::Knows(_) | KnowKind::Distributed(_) => {}
            },
            Kernel::GfpIter { set, .. } => batch.request_scopes(*set),
            Kernel::Load
            | Kernel::Not(_)
            | Kernel::And(_)
            | Kernel::Or(_)
            | Kernel::Temporal { .. } => {}
        }
    }
}

fn run_kernel(
    eval: &mut Evaluator<'_>,
    plan: &FormulaPlan,
    i: usize,
    results: &[Option<Arc<Bitset>>],
) -> Bitset {
    let arg = |id: &u32| -> Arc<Bitset> {
        Arc::clone(
            results[*id as usize]
                .as_ref()
                .expect("plan inputs precede their consumers"),
        )
    };
    match &plan.kernels[i] {
        Kernel::Load => {
            let f = plan.formulas[i]
                .as_ref()
                .expect("Load kernels always carry their leaf formula");
            eval.compute_leaf(f)
        }
        Kernel::Not(a) => {
            let mut out = (*arg(a)).clone();
            out.invert();
            out
        }
        Kernel::And(inputs) => {
            let mut out = Bitset::new_true(eval.num_points);
            for id in inputs {
                out &= &arg(id);
            }
            out
        }
        Kernel::Or(inputs) => {
            let mut out = Bitset::new_false(eval.num_points);
            for id in inputs {
                out |= &arg(id);
            }
            out
        }
        Kernel::KnowClose { kind, input } => {
            let phi = arg(input);
            know_close_kind(eval, *kind, &phi)
        }
        Kernel::ReachClose {
            set,
            continual,
            input,
        } => {
            let phi = arg(input);
            let reach = eval.reachability(*set);
            if *continual {
                eval.continual_common_from_reach(&phi, &reach)
            } else {
                eval.common_from_reach(&phi, &reach)
            }
        }
        Kernel::Temporal { op, input } => {
            let phi = arg(input);
            match op {
                TemporalOp::Always => eval.always_of(&phi),
                TemporalOp::Eventually => eval.eventually_of(&phi),
                TemporalOp::AlwaysAll => eval.always_all_of(&phi),
                TemporalOp::SometimeAll => eval.sometime_all_of(&phi),
            }
        }
        Kernel::GfpIter { set, boxed, input } => {
            let phi = arg(input);
            // Id exhaustion cannot occur (the loop registers nothing) and
            // the budget is unlimited, so the iteration cannot interrupt.
            match gfp_over(eval, *set, &phi, *boxed, &RunBudget::unlimited().arm()) {
                Ok((bits, _)) => bits,
                Err(e) => panic!("{e}"),
            }
        }
    }
}

/// `C_S φ` / `C□_S φ` by native gfp iteration; the plan-mode engine
/// behind [`crate::fixpoint`]'s public entry points.
///
/// Returns the satisfaction bitset and the iteration count (including
/// the final confirming pass) — identical to the formula-iteration
/// reference for both.
///
/// # Errors
///
/// Returns [`GfpInterrupt::Budget`] when the budget's deadline fires;
/// unlike the formula loop, the native loop interns nothing, so
/// [`GfpInterrupt::Model`] is never produced.
pub(crate) fn gfp(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    boxed: bool,
    budget: &ArmedBudget,
) -> Result<(Bitset, usize), GfpInterrupt> {
    // One batched sweep covers both the iteration's own scope columns
    // and every set `φ`'s plan will resolve.
    let plan = FormulaPlan::compile(phi);
    if eval.batch_mode() {
        let mut batch = crate::reach::BatchBuilder::new();
        batch.request_scopes(s);
        collect_plan_sets(&plan, &mut batch);
        batch.run(eval);
    }
    let phi_bits = eval.eval_plan(&plan);
    gfp_over(eval, s, &phi_bits, boxed, budget)
}

fn gfp_over(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi_bits: &Bitset,
    boxed: bool,
    budget: &ArmedBudget,
) -> Result<(Bitset, usize), GfpInterrupt> {
    let scopes = eval.scope_columns(s);
    let classes = eval.classes();
    let mut current = Bitset::new_true(eval.num_points);
    let mut iterations = 0;
    loop {
        budget.check_deadline().map_err(GfpInterrupt::Budget)?;
        iterations += 1;
        let mut conj = phi_bits.clone();
        conj &= &current;
        let mut next = Bitset::new_true(eval.num_points);
        if let Some(classes) = classes {
            // Orbit twist: the falsified classes of this iterate are
            // collected once across all processors and projected per
            // processor — the same `E_S` step the unreduced loop takes,
            // evaluated on representatives (DESIGN.md §4i). Iteration
            // counts agree with the unreduced loop because each iterate
            // is a symmetric set, determined by its restriction to
            // representatives.
            let class_ok = eval.class_ok_scoped(&conj, &scopes, classes);
            for p in ProcessorId::all(eval.n) {
                let believes = eval.project_class_ok(p, &class_ok, classes);
                next.and_implication(&scopes[p.index()], &believes);
            }
        } else {
            for p in ProcessorId::all(eval.n) {
                let believes = know_close(eval, p, &conj, Some(&scopes[p.index()]));
                next.and_implication(&scopes[p.index()], &believes);
            }
        }
        if boxed {
            next = eval.always_all_of(&next);
        }
        if next == current {
            return Ok((current, iterations));
        }
        current = next;
    }
}

/// The orbit twist of [`know_close_kind`]: every closure goes through a
/// per-class verdict shared across processors (see
/// `Evaluator::class_ok_scoped`), so the bucket sweep of [`know_close`]
/// is replaced by class projection. Results are bit-identical to the
/// recursive evaluator's quotient kernels.
fn know_close_kind_quotient(
    eval: &mut Evaluator<'_>,
    kind: KnowKind,
    phi: &Bitset,
    classes: &eba_sim::symmetry::ViewClasses,
) -> Bitset {
    match kind {
        KnowKind::Knows(p) => {
            let class_ok = eval.class_ok_unscoped(phi, classes);
            eval.project_class_ok(p, &class_ok, classes)
        }
        KnowKind::Believes(p, s) => {
            let scopes = eval.scope_columns(s);
            let class_ok = eval.class_ok_scoped(phi, &scopes, classes);
            eval.project_class_ok(p, &class_ok, classes)
        }
        KnowKind::Everyone(s) => {
            let scopes = eval.scope_columns(s);
            let class_ok = eval.class_ok_scoped(phi, &scopes, classes);
            let mut out = Bitset::new_true(eval.num_points);
            for p in ProcessorId::all(eval.n) {
                let believes = eval.project_class_ok(p, &class_ok, classes);
                out.and_implication(&scopes[p.index()], &believes);
            }
            out
        }
        KnowKind::Someone(s) => {
            let scopes = eval.scope_columns(s);
            let class_ok = eval.class_ok_scoped(phi, &scopes, classes);
            let mut out = Bitset::new_false(eval.num_points);
            for p in ProcessorId::all(eval.n) {
                let believes = eval.project_class_ok(p, &class_ok, classes);
                out.or_conjunction(&scopes[p.index()], &believes);
            }
            out
        }
        KnowKind::Distributed(s) => eval.distributed_knowledge(s, phi),
    }
}

fn know_close_kind(eval: &mut Evaluator<'_>, kind: KnowKind, phi: &Bitset) -> Bitset {
    if let Some(classes) = eval.classes() {
        return know_close_kind_quotient(eval, kind, phi, classes);
    }
    match kind {
        KnowKind::Knows(p) => know_close(eval, p, phi, None),
        KnowKind::Believes(p, s) => {
            let scopes = eval.scope_columns(s);
            know_close(eval, p, phi, Some(&scopes[p.index()]))
        }
        KnowKind::Everyone(s) => {
            let scopes = eval.scope_columns(s);
            let mut out = Bitset::new_true(eval.num_points);
            for p in ProcessorId::all(eval.n) {
                let believes = know_close(eval, p, phi, Some(&scopes[p.index()]));
                out.and_implication(&scopes[p.index()], &believes);
            }
            out
        }
        KnowKind::Someone(s) => {
            let scopes = eval.scope_columns(s);
            let mut out = Bitset::new_false(eval.num_points);
            for p in ProcessorId::all(eval.n) {
                let believes = know_close(eval, p, phi, Some(&scopes[p.index()]));
                out.or_conjunction(&scopes[p.index()], &believes);
            }
            out
        }
        KnowKind::Distributed(s) => eval.distributed_knowledge(s, phi),
    }
}

/// `K_p` (`scope = None`) or `B^S_p` (`scope = Some`) over the CSR bucket
/// partition: a bucket (all points where `p` has one view) satisfies the
/// closure iff every in-scope point of the bucket satisfies `φ`; the
/// result then holds at *every* point of such a bucket. Extensionally
/// identical to the recursive `Evaluator::knowledge_like` scan.
///
/// Since the buckets partition the points, the closure is the complement
/// of the union of *bad* buckets — those containing a violating point
/// (in scope, `¬φ`). Computing the violation set with word-level ops and
/// walking only its set bits makes the sweep `O(words + violations +
/// |bad buckets|)` instead of touching every point of every bucket; near
/// a gfp's fixed point violations are sparse, which is where this runs
/// hottest.
fn know_close(
    eval: &Evaluator<'_>,
    p: ProcessorId,
    phi: &Bitset,
    scope: Option<&Bitset>,
) -> Bitset {
    let store = eval.system.points();
    let (offsets, items) = store.buckets(p);
    let column = store.column(p);
    let viol = match scope {
        Some(s) => {
            let mut v = s.clone();
            v.and_not(phi);
            v
        }
        None => {
            let mut v = phi.clone();
            v.invert();
            v
        }
    };
    let mut out = Bitset::new_true(eval.num_points);
    for pt in viol.ones() {
        let v = column[pt].index();
        let bucket = &items[offsets[v] as usize..offsets[v + 1] as usize];
        // The bucket contains `pt`, so its first item doubles as a
        // cheap "already cleared" marker.
        if !out.get(bucket[0] as usize) {
            continue;
        }
        for &q in bucket {
            out.set(q as usize, false);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSets;
    use eba_model::{FailureMode, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    fn sample_formulas(eval: &mut Evaluator<'_>) -> Vec<Formula> {
        let seen_zero = StateSets::with_value_seen(eval.system().table(), 3, Value::Zero);
        let id = eval.register_state_sets(seen_zero);
        let s = NonRigidSet::NonfaultyAnd(id);
        let phi = Formula::exists(Value::Zero);
        vec![
            phi.clone(),
            phi.clone().not().or(phi.clone()),
            phi.clone().known_by(p(0)).and(phi.clone().known_by(p(1))),
            phi.clone().believed_by(p(2), NonRigidSet::Nonfaulty),
            phi.clone().everyone(s),
            phi.clone().someone(s),
            phi.clone().distributed(NonRigidSet::Nonfaulty),
            phi.clone().common(NonRigidSet::Nonfaulty),
            phi.clone().continual_common(s),
            phi.clone().always().eventually(),
            phi.clone().always_all().or(phi.sometime_all().not()),
        ]
    }

    #[test]
    fn plans_match_the_recursive_oracle_on_sample_formulas() {
        let system = crash_system();
        let mut compiled = Evaluator::new(&system);
        let mut oracle = Evaluator::new(&system);
        oracle.set_plan_mode(false);
        assert!(compiled.plan_mode() && !oracle.plan_mode());
        let formulas = sample_formulas(&mut compiled);
        // The same registrations in the same order, so ids line up.
        let _ = sample_formulas(&mut oracle);
        for f in formulas {
            let via_plan = compiled.eval(&f);
            let via_rec = oracle.eval(&f);
            assert_eq!(*via_plan, *via_rec, "plan and oracle disagree on {f}");
        }
    }

    #[test]
    fn compilation_deduplicates_shared_subformulas() {
        let phi = Formula::exists(Value::Zero).known_by(p(0));
        // (K φ) ∧ ¬(K φ) shares the K φ node *and* its leaf.
        let f = phi.clone().and(phi.not());
        let plan = FormulaPlan::compile(&f);
        assert_eq!(plan.len(), 4, "expected leaf, K, ¬, ∧");
        assert!(matches!(plan.kernels()[0], Kernel::Load));
        assert!(matches!(plan.kernels()[3], Kernel::And(_)));
    }

    #[test]
    fn gfp_plan_matches_reachability_closure() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::One);
        for (boxed, closure) in [
            (false, phi.clone().common(NonRigidSet::Nonfaulty)),
            (true, phi.clone().continual_common(NonRigidSet::Nonfaulty)),
        ] {
            let plan = FormulaPlan::compile_gfp(NonRigidSet::Nonfaulty, &phi, boxed);
            assert!(matches!(
                plan.kernels().last(),
                Some(Kernel::GfpIter { .. })
            ));
            let via_gfp = eval.eval_plan(&plan);
            let via_reach = eval.eval(&closure);
            assert_eq!(*via_gfp, *via_reach, "gfp kernel differs (boxed={boxed})");
        }
    }

    #[test]
    fn gfp_results_are_not_memoized_under_closure_keys() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let plan = FormulaPlan::compile_gfp(NonRigidSet::Nonfaulty, &phi, false);
        let _ = eval.eval_plan(&plan);
        // The closure formula must still be computed from reachability,
        // not served from a cache entry the gfp loop planted.
        assert!(!eval
            .cache
            .contains_key(&phi.clone().common(NonRigidSet::Nonfaulty)));
    }

    #[test]
    fn scope_columns_match_pointwise_membership() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let id =
            eval.register_state_sets(StateSets::with_value_seen(system.table(), 3, Value::One));
        for s in [
            NonRigidSet::Everyone,
            NonRigidSet::Nonfaulty,
            NonRigidSet::NonfaultyAnd(id),
        ] {
            let scopes = eval.scope_columns(s);
            for i in 0..3 {
                for idx in 0..eval.num_points() {
                    let (run, time) = eval.point_of(idx);
                    assert_eq!(
                        scopes[i].get(idx),
                        eval.members(s, run, time).contains(p(i)),
                        "scope column of processor {i} at point {idx} under {s:?}"
                    );
                }
            }
        }
    }
}
