//! Generated systems: the set of runs of the full-information protocol.

use crate::builder::{SystemBuilder, RUN_CAPACITY};
use crate::exchange::{try_exchange_views, AnyExchange};
use crate::points::PointStore;
use crate::symmetry::{self, SymmetryInfo};
use crate::view::{ViewId, ViewTable};
use eba_model::symmetry::Perm;
use eba_model::{
    sample, FailurePattern, InitialConfig, ModelError, ProcSet, ProcessorId, Scenario, Time,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a run within a [`GeneratedSystem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RunId(u32);

impl RunId {
    /// The index of this run.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a run id from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit a `u32`; for untrusted indices use
    /// [`RunId::try_new`].
    #[must_use]
    pub fn new(index: usize) -> Self {
        RunId::try_new(index).expect("run id overflow")
    }

    /// Fallible [`RunId::new`], reporting id-space exhaustion as a
    /// [`ModelError::CapacityExceeded`] instead of panicking.
    pub fn try_new(index: usize) -> Result<Self, ModelError> {
        u32::try_from(index)
            .map(RunId)
            .map_err(|_| ModelError::capacity_exceeded("run ids", RUN_CAPACITY))
    }
}

/// The defining data of one run: runs are uniquely determined by an
/// initial configuration and a failure pattern (Section 2.3).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The run's initial configuration.
    pub config: InitialConfig,
    /// The run's failure pattern.
    pub pattern: FailurePattern,
    /// The set of processors nonfaulty throughout the run (the value of
    /// the nonrigid set `N` on this run).
    pub nonfaulty: ProcSet,
}

/// The set of runs of the full-information protocol for a scenario, with
/// every processor's view interned at every time.
///
/// This is the paper's system `R_P` (restricted to the FIP and a finite
/// horizon) — the structure over which all knowledge formulas are
/// evaluated. Since all full-information protocols have the same states at
/// corresponding points (Section 2.4, Corollary A.5), a single generated
/// system serves every `FIP(Z, O)` over it: decision pairs are just view
/// predicates layered on top.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// // 8 configurations × 25 patterns.
/// assert_eq!(system.num_runs(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GeneratedSystem {
    scenario: Scenario,
    runs: Vec<RunRecord>,
    /// Flattened `views[run][time][proc]`.
    views: Vec<ViewId>,
    table: ViewTable,
    lookup: HashMap<(u128, FailurePattern), RunId>,
    /// The columnar point store over the same views, built once at system
    /// construction and shared by every clone of the system.
    store: Arc<PointStore>,
    /// Orbit accounting of a symmetry-quotiented build; `None` for
    /// unreduced systems (the default).
    symmetry: Option<Arc<SymmetryInfo>>,
}

impl GeneratedSystem {
    /// Generates the system containing **every** run of the scenario:
    /// every initial configuration crossed with every canonical failure
    /// pattern.
    ///
    /// Delegates to [`SystemBuilder`] with its default worker count; use
    /// the builder directly to control threads and shards or to handle
    /// capacity overflow as an error. The size is
    /// `2^n × count_patterns(scenario)`; check
    /// [`eba_model::enumerate::count_patterns`] (or
    /// [`eba_model::ScenarioSpace::total_runs`]) before calling this on
    /// large scenarios.
    ///
    /// # Panics
    ///
    /// Panics if the scenario overflows the run or view id space.
    #[must_use]
    pub fn exhaustive(scenario: &Scenario) -> Self {
        SystemBuilder::new(scenario)
            .build()
            .expect("scenario exceeds id capacity")
    }

    /// Generates a sampled system: `num_runs` random (configuration,
    /// pattern) pairs drawn with the given seed, deduplicated, plus the
    /// failure-free run of every sampled configuration (so corresponding
    /// failure-free behavior is always present).
    #[must_use]
    pub fn sampled(scenario: &Scenario, num_runs: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = sample::PatternSampler::new(*scenario);
        let mut runs = Vec::with_capacity(num_runs * 2);
        for _ in 0..num_runs {
            let config = sample::random_config(scenario.n(), &mut rng);
            let pattern = sampler.sample(&mut rng);
            runs.push((config.clone(), FailurePattern::failure_free(scenario.n())));
            runs.push((config, pattern));
        }
        Self::from_runs(scenario, runs)
    }

    /// Builds a system from an explicit list of runs. Duplicate
    /// (configuration, pattern) pairs are kept only once.
    ///
    /// # Panics
    ///
    /// Panics if a pattern fails validation against the scenario.
    #[must_use]
    pub fn from_runs(scenario: &Scenario, run_specs: Vec<(InitialConfig, FailurePattern)>) -> Self {
        let n = scenario.n();
        let horizon = scenario.horizon();
        let slots_per_run = (horizon.index() + 1) * n;
        let exchange = AnyExchange::for_scenario(scenario);

        let mut table = ViewTable::new();
        let mut runs = Vec::new();
        let mut views = Vec::with_capacity(run_specs.len() * slots_per_run);
        let mut lookup = HashMap::new();

        for (config, pattern) in run_specs {
            scenario
                .validate_pattern(&pattern)
                .expect("failure pattern invalid for the scenario");
            let key = (config.to_bits(), pattern.clone());
            if lookup.contains_key(&key) {
                continue;
            }
            let id = RunId::new(runs.len());
            lookup.insert(key, id);
            let run_views = try_exchange_views(&exchange, &config, &pattern, horizon, &mut table)
                .expect("view table overflow");
            for time_views in &run_views {
                views.extend_from_slice(time_views);
            }
            let nonfaulty = pattern.nonfaulty_set();
            runs.push(RunRecord {
                config,
                pattern,
                nonfaulty,
            });
        }

        Self::from_parts(*scenario, runs, views, table, lookup, None)
    }

    /// Assembles a system from parts the [`SystemBuilder`] has already
    /// validated (runs in enumeration order, views remapped to `table`),
    /// finishing with the columnar [`PointStore`] — this is the single
    /// point where the store is built, so every construction path
    /// (exhaustive, sampled, sharded, budget-partial) carries one.
    pub(crate) fn from_parts(
        scenario: Scenario,
        runs: Vec<RunRecord>,
        views: Vec<ViewId>,
        table: ViewTable,
        lookup: HashMap<(u128, FailurePattern), RunId>,
        symmetry: Option<Arc<SymmetryInfo>>,
    ) -> Self {
        let times = scenario.horizon().index() + 1;
        let store = Arc::new(PointStore::build(
            scenario.n(),
            times,
            runs.len(),
            &views,
            &table,
        ));
        GeneratedSystem {
            scenario,
            runs,
            views,
            table,
            lookup,
            store,
            symmetry,
        }
    }

    /// The scenario this system was generated for.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.scenario.n()
    }

    /// The horizon: every run covers times `0..=horizon`.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.scenario.horizon()
    }

    /// Number of runs.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of (run, time) points.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_runs() * (self.horizon().index() + 1)
    }

    /// Approximate resident heap bytes of the system: run records, the
    /// flattened view matrix, the interned view table, the run-lookup
    /// index, and the columnar point store. Like
    /// [`PointStore::approx_bytes`] this counts lengths, not allocator
    /// capacities — it is a relative figure for memory budgeting (the
    /// serve pool evicts least-recently-used sessions against it), not
    /// an exact heap profile.
    #[must_use]
    pub fn approx_resident_bytes(&self) -> usize {
        use eba_model::FaultyBehavior;
        use std::mem::size_of;
        let n = self.n();
        let pattern_heap = |pat: &FailurePattern| -> usize {
            ProcessorId::all(n)
                .map(|p| match pat.behavior(p) {
                    Some(FaultyBehavior::Omission { omissions }) => {
                        omissions.len() * size_of::<ProcSet>()
                    }
                    _ => 0,
                })
                .sum::<usize>()
                + n * size_of::<Option<FaultyBehavior>>()
        };
        let runs: usize = self
            .runs
            .iter()
            .map(|r| {
                size_of::<RunRecord>()
                    + r.config.n() * size_of::<eba_model::Value>()
                    + pattern_heap(&r.pattern)
            })
            .sum();
        // Lookup keys hold a second clone of each pattern.
        let lookup: usize = self
            .lookup
            .keys()
            .map(|(_, pattern)| size_of::<u128>() + pattern_heap(pattern) + size_of::<RunId>())
            .sum();
        runs + lookup
            + self.views.len() * size_of::<ViewId>()
            + self.table.approx_bytes()
            + self.store.approx_bytes()
    }

    /// Iterates over all run ids.
    pub fn run_ids(&self) -> impl DoubleEndedIterator<Item = RunId> + Clone {
        (0..self.runs.len()).map(RunId::new)
    }

    /// The record of run `r`.
    #[must_use]
    pub fn run(&self, r: RunId) -> &RunRecord {
        &self.runs[r.index()]
    }

    /// The set of nonfaulty processors of run `r`.
    #[must_use]
    pub fn nonfaulty(&self, r: RunId) -> ProcSet {
        self.runs[r.index()].nonfaulty
    }

    /// The view (FIP local state) of processor `p` at time `time` of run
    /// `r`.
    #[must_use]
    pub fn view(&self, r: RunId, p: ProcessorId, time: Time) -> ViewId {
        let n = self.n();
        let slots_per_run = (self.horizon().index() + 1) * n;
        self.views[r.index() * slots_per_run + time.index() * n + p.index()]
    }

    /// The flattened view row of run `r`: `(horizon + 1) × n` entries,
    /// time-major then processor-major. The horizon-extension path copies
    /// these rows verbatim into the extended system (the extended table
    /// starts as a clone of this system's table, so the ids stay valid).
    pub(crate) fn views_row(&self, r: RunId) -> &[ViewId] {
        let slots_per_run = (self.horizon().index() + 1) * self.n();
        &self.views[r.index() * slots_per_run..(r.index() + 1) * slots_per_run]
    }

    /// The view table holding all interned views.
    #[must_use]
    pub fn table(&self) -> &ViewTable {
        &self.table
    }

    /// The columnar point store: per-processor view columns and CSR
    /// bucket partitions over this system's points (see
    /// [`PointStore`]).
    #[must_use]
    pub fn points(&self) -> &PointStore {
        &self.store
    }

    /// Finds the run with the given configuration and pattern, if present
    /// (used to pair *corresponding runs* across protocols).
    #[must_use]
    pub fn find_run(&self, config: &InitialConfig, pattern: &FailurePattern) -> Option<RunId> {
        self.lookup
            .get(&(config.to_bits(), pattern.clone()))
            .copied()
    }

    /// The orbit accounting of a symmetry-quotiented build, or `None`
    /// for an unreduced system.
    #[must_use]
    pub fn symmetry(&self) -> Option<&SymmetryInfo> {
        self.symmetry.as_deref()
    }

    /// Resolves a `(config, pattern)` query through the symmetry
    /// quotient: the run itself when present, otherwise the
    /// representative run of the pattern's orbit together with the
    /// witness permutation `σ` carrying the query onto it
    /// (`σ·(config, pattern)` is the representative; the answer about
    /// processor `p` of the queried run lives at processor `σ(p)` of the
    /// representative). Returns `None` when the orbit is absent (sampled
    /// or budget-partial systems).
    #[must_use]
    pub fn resolve_run(
        &self,
        config: &InitialConfig,
        pattern: &FailurePattern,
    ) -> Option<(RunId, Perm)> {
        symmetry::resolve_run(|c, q| self.find_run(c, q), self.n(), config, pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{enumerate, FailureMode, Value};

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn exhaustive_size_matches_enumeration() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let expected = 8 * enumerate::count_patterns(&scenario) as usize;
        assert_eq!(system.num_runs(), expected);
        assert_eq!(system.num_points(), expected * 3);
    }

    #[test]
    fn views_are_consistent_with_records() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        for r in system.run_ids() {
            let record = system.run(r);
            for q in ProcessorId::all(3) {
                let v0 = system.view(r, q, Time::ZERO);
                assert_eq!(system.table().own_value(v0), record.config.value(q));
                assert_eq!(system.table().time(v0), Time::ZERO);
                assert_eq!(system.table().proc(v0), q);
            }
        }
    }

    #[test]
    fn find_run_locates_corresponding_runs() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let config = InitialConfig::uniform(3, Value::One);
        let pattern = FailurePattern::failure_free(3);
        let r = system.find_run(&config, &pattern).unwrap();
        assert_eq!(system.run(r).config, config);
        assert_eq!(system.nonfaulty(r), ProcSet::full(3));
    }

    #[test]
    fn from_runs_deduplicates() {
        let scenario = Scenario::new(2, 1, FailureMode::Crash, 1).unwrap();
        let config = InitialConfig::uniform(2, Value::Zero);
        let pattern = FailurePattern::failure_free(2);
        let system = GeneratedSystem::from_runs(
            &scenario,
            vec![(config.clone(), pattern.clone()), (config, pattern)],
        );
        assert_eq!(system.num_runs(), 1);
    }

    #[test]
    fn sampled_systems_are_reproducible() {
        let scenario = Scenario::new(6, 2, FailureMode::Omission, 4).unwrap();
        let a = GeneratedSystem::sampled(&scenario, 50, 9);
        let b = GeneratedSystem::sampled(&scenario, 50, 9);
        assert_eq!(a.num_runs(), b.num_runs());
        for (ra, rb) in a.run_ids().zip(b.run_ids()) {
            assert_eq!(a.run(ra).config, b.run(rb).config);
            assert_eq!(a.run(ra).pattern, b.run(rb).pattern);
        }
    }

    #[test]
    fn interning_shares_views_across_runs() {
        // In a failure-free world every run's views depend only on the
        // configuration, so the table stays small relative to the run
        // count.
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        assert!(system.table().len() < system.num_points() * system.n());
        // p0's time-0 view appears in many runs but is interned once per
        // initial value.
        let zeros = system
            .run_ids()
            .map(|r| system.view(r, p(0), Time::ZERO))
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(zeros.len(), 2);
    }
}
