//! Execution traces.

use eba_model::{FailurePattern, InitialConfig, ProcSet, ProcessorId, Time, Value};

/// An irreversible decision: the value and the time at which it was first
/// output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Decision {
    /// The decided value.
    pub value: Value,
    /// The time at which the decision was made (decisions happen at times,
    /// not during rounds — Section 2.3).
    pub time: Time,
}

/// A complete record of one run of a protocol: per-time local states, the
/// first decision of every processor, and the run's defining data.
///
/// Produced by [`crate::execute`].
#[derive(Clone, Debug)]
pub struct Trace<S> {
    config: InitialConfig,
    pattern: FailurePattern,
    horizon: Time,
    /// `states[time][proc]`.
    states: Vec<Vec<S>>,
    decisions: Vec<Option<Decision>>,
    messages_delivered: u64,
    message_units: u64,
}

impl<S> Trace<S> {
    pub(crate) fn new(
        config: InitialConfig,
        pattern: FailurePattern,
        horizon: Time,
        states: Vec<Vec<S>>,
        decisions: Vec<Option<Decision>>,
        messages_delivered: u64,
        message_units: u64,
    ) -> Self {
        Trace {
            config,
            pattern,
            horizon,
            states,
            decisions,
            messages_delivered,
            message_units,
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// The run's initial configuration.
    #[must_use]
    pub fn config(&self) -> &InitialConfig {
        &self.config
    }

    /// The run's failure pattern.
    #[must_use]
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// The last simulated time.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The set of processors nonfaulty throughout the run.
    #[must_use]
    pub fn nonfaulty(&self) -> ProcSet {
        self.pattern.nonfaulty_set()
    }

    /// The local state of `p` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` exceeds the horizon.
    #[must_use]
    pub fn state(&self, p: ProcessorId, time: Time) -> &S {
        &self.states[time.index()][p.index()]
    }

    /// The first decision of `p`, if it ever decides within the horizon.
    #[must_use]
    pub fn decision(&self, p: ProcessorId) -> Option<Decision> {
        self.decisions[p.index()]
    }

    /// The time at which `p` decides, if it does.
    #[must_use]
    pub fn decision_time(&self, p: ProcessorId) -> Option<Time> {
        self.decision(p).map(|d| d.time)
    }

    /// The value `p` decides, if it does.
    #[must_use]
    pub fn decided_value(&self, p: ProcessorId) -> Option<Value> {
        self.decision(p).map(|d| d.value)
    }

    /// Whether every nonfaulty processor decided within the horizon.
    #[must_use]
    pub fn all_nonfaulty_decided(&self) -> bool {
        self.nonfaulty().iter().all(|p| self.decision(p).is_some())
    }

    /// The latest decision time among nonfaulty processors, or `None` if
    /// some nonfaulty processor never decides.
    #[must_use]
    pub fn last_nonfaulty_decision_time(&self) -> Option<Time> {
        self.nonfaulty()
            .iter()
            .map(|p| self.decision_time(p))
            .collect::<Option<Vec<_>>>()
            .and_then(|times| times.into_iter().max())
    }

    /// The distinct values decided by nonfaulty processors.
    #[must_use]
    pub fn nonfaulty_decided_values(&self) -> Vec<Value> {
        let mut values: Vec<Value> = self
            .nonfaulty()
            .iter()
            .filter_map(|p| self.decided_value(p))
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// Total number of messages delivered during the run.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Total size of delivered messages, in the protocol's abstract units
    /// (see [`crate::Protocol::message_units`]).
    #[must_use]
    pub fn message_units(&self) -> u64 {
        self.message_units
    }

    /// Checks the *weak agreement* property (2′): nonfaulty processors do
    /// not decide on different values.
    #[must_use]
    pub fn satisfies_weak_agreement(&self) -> bool {
        self.nonfaulty_decided_values().len() <= 1
    }

    /// Checks the *weak validity* property (3′): if all initial values are
    /// identical, every nonfaulty decision equals that value.
    #[must_use]
    pub fn satisfies_weak_validity(&self) -> bool {
        if !self.config.all_same() {
            return true;
        }
        let v = self.config.value(ProcessorId::new(0));
        self.nonfaulty()
            .iter()
            .filter_map(|p| self.decided_value(p))
            .all(|d| d == v)
    }

    /// Checks the EBA *decision* property restricted to the horizon: every
    /// nonfaulty processor decides. (A protocol that decides after the
    /// horizon fails this check; choose the horizon accordingly.)
    #[must_use]
    pub fn satisfies_decision(&self) -> bool {
        self.all_nonfaulty_decided()
    }

    /// Checks the SBA *simultaneity* property (4): all nonfaulty
    /// processors decide at the same time.
    #[must_use]
    pub fn satisfies_simultaneity(&self) -> bool {
        let mut times = self.nonfaulty().iter().map(|p| self.decision_time(p));
        match times.next() {
            None => true,
            Some(first) => times.all(|t| t == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_decisions(decisions: Vec<Option<Decision>>) -> Trace<()> {
        let n = decisions.len();
        Trace::new(
            InitialConfig::uniform(n, Value::One),
            FailurePattern::failure_free(n),
            Time::new(2),
            vec![vec![(); n]; 3],
            decisions,
            0,
            0,
        )
    }

    fn d(v: Value, t: u16) -> Option<Decision> {
        Some(Decision {
            value: v,
            time: Time::new(t),
        })
    }

    #[test]
    fn agreement_checks() {
        let t = trace_with_decisions(vec![d(Value::One, 1), d(Value::One, 2)]);
        assert!(t.satisfies_weak_agreement());
        let t = trace_with_decisions(vec![d(Value::One, 1), d(Value::Zero, 2)]);
        assert!(!t.satisfies_weak_agreement());
        let t = trace_with_decisions(vec![d(Value::One, 1), None]);
        assert!(t.satisfies_weak_agreement());
        assert!(!t.satisfies_decision());
    }

    #[test]
    fn validity_checks() {
        // All-ones configuration with a 0 decision violates weak validity.
        let t = trace_with_decisions(vec![d(Value::Zero, 1), d(Value::Zero, 1)]);
        assert!(!t.satisfies_weak_validity());
        let t = trace_with_decisions(vec![d(Value::One, 1), d(Value::One, 1)]);
        assert!(t.satisfies_weak_validity());
    }

    #[test]
    fn simultaneity_checks() {
        let t = trace_with_decisions(vec![d(Value::One, 1), d(Value::One, 1)]);
        assert!(t.satisfies_simultaneity());
        let t = trace_with_decisions(vec![d(Value::One, 1), d(Value::One, 2)]);
        assert!(!t.satisfies_simultaneity());
        assert_eq!(t.last_nonfaulty_decision_time(), Some(Time::new(2)));
    }

    #[test]
    fn last_decision_time_none_when_undecided() {
        let t = trace_with_decisions(vec![d(Value::One, 1), None]);
        assert_eq!(t.last_nonfaulty_decision_time(), None);
    }
}
