//! A small text syntax for formulas, used by the `eba-check` command-line
//! model checker and handy in tests.
//!
//! Grammar (ASCII-friendly; processors are 1-based as in the paper):
//!
//! ```text
//! formula := iff
//! iff     := imp ( '<->' imp )*
//! imp     := or ( '->' or )*            (right-associative)
//! or      := and ( '|' and )*
//! and     := unary ( '&' unary )*
//! unary   := '!' unary | modal
//! modal   := 'K_'i '(' formula ')'      knowledge, K_i
//!          | 'B_'i '(' formula ')'      belief relative to N, B^N_i
//!          | 'E'  '(' formula ')'       everyone in N
//!          | 'C'  '(' formula ')'       common knowledge among N
//!          | 'CC' '(' formula ')'       continual common knowledge, C□_N
//!          | 'G'  '(' formula ')'       always (present and future), □
//!          | 'F'  '(' formula ')'       eventually, ◇
//!          | 'A'  '(' formula ')'       at all times of the run, □̄
//!          | 'S'  '(' formula ')'       at some time of the run, ◇̄
//!          | atom | '(' formula ')'
//! atom    := 'true' | 'false'
//!          | 'E0' | 'E1'                ∃0, ∃1
//!          | 'init('i')=0' | 'init('i')=1'
//!          | 'N('i')'                   i ∈ N
//! ```
//!
//! All modal operators are indexed by the nonfaulty set `N`; richer set
//! expressions (e.g. `N ∧ A` with registered state sets) are available
//! through the programmatic API only, since they need evaluator-issued
//! ids.
//!
//! In addition to the ASCII syntax above, the parser accepts the unicode
//! notation that [`Formula`]'s `Display` produces (`∃0`, `¬`, `∧`, `∨`,
//! `⊤`, `⊥`, `K_p1(…)`, `B^N_p1(…)`, `E_N`, `C_N`, `C□_N`, `□`, `◇`,
//! `□̄`, `◇̄`, `p1∈N`), so `parse(format!("{f}")) == f` round-trips for
//! every `N`-indexed formula — property-tested in the workspace suite.
//!
//! # Example
//!
//! ```
//! use eba_kripke::parse::parse_formula;
//!
//! let f = parse_formula("B_1(E0 & CC(E0))").expect("example formula is well-formed");
//! assert!(f.to_string().contains("C□_N"));
//! assert!(parse_formula("E0 &").is_err());
//! ```

use crate::{Formula, NonRigidSet};
use eba_model::{ProcessorId, Value};
use std::error::Error;
use std::fmt;

/// A parse error: what went wrong and where (byte offset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parses a formula from the textual syntax; see the module docs.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending position on malformed
/// input.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let formula = parser.iff()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing input"));
    }
    Ok(formula)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse()
            .map_err(|_| self.error("number out of range"))
    }

    /// A 1-based processor index from the input, converted to 0-based.
    /// Accepts an optional `p` prefix (the Display form).
    fn processor(&mut self) -> Result<ProcessorId, ParseError> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'p')
            && self.input.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
        }
        let raw = self.number()?;
        if raw == 0 || raw > ProcessorId::MAX_PROCESSORS {
            return Err(self.error("processor indices are 1-based and ≤ 128"));
        }
        Ok(ProcessorId::new(raw - 1))
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.imp()?;
        while self.eat("<->") {
            let right = self.imp()?;
            left = left.iff(right);
        }
        Ok(left)
    }

    fn imp(&mut self) -> Result<Formula, ParseError> {
        let left = self.or()?;
        self.skip_ws();
        // `->` must not consume the `-` of `<->` (handled in iff) — at
        // this point a leading `<` never occurs, so plain matching works.
        if self.eat("->") {
            let right = self.imp()?; // right-associative
            return Ok(left.implies(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and()?;
        loop {
            if self.peek() == Some(b'|') {
                self.pos += 1;
            } else if !self.eat("∨") {
                break;
            }
            let right = self.and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        loop {
            if self.peek() == Some(b'&') {
                self.pos += 1;
            } else if !self.eat("∧") {
                break;
            }
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek() == Some(b'!') {
            self.pos += 1;
            return Ok(self.unary()?.not());
        }
        if self.eat("¬") {
            return Ok(self.unary()?.not());
        }
        self.modal()
    }

    fn parens(&mut self) -> Result<Formula, ParseError> {
        self.expect("(")?;
        let inner = self.iff()?;
        self.expect(")")?;
        Ok(inner)
    }

    fn modal(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();

        // Atoms that begin with letters also used by operators are
        // matched first (longest-match). Unicode alternatives mirror the
        // Display output.
        if self.eat("true") || self.eat("⊤") {
            return Ok(Formula::True);
        }
        if self.eat("false") || self.eat("⊥") {
            return Ok(Formula::False);
        }
        if self.eat("init(") {
            let p = self.processor()?;
            self.expect(")")?;
            self.expect("=")?;
            let v = self.value()?;
            return Ok(Formula::Initial(p, v));
        }
        if self.eat("E0") || self.eat("∃0") {
            return Ok(Formula::exists(Value::Zero));
        }
        if self.eat("E1") || self.eat("∃1") {
            return Ok(Formula::exists(Value::One));
        }
        if self.eat("K_") {
            let p = self.processor()?;
            return Ok(self.parens()?.known_by(p));
        }
        if self.eat("B^N_") || self.eat("B_") {
            let p = self.processor()?;
            return Ok(self.parens()?.believed_by(p, NonRigidSet::Nonfaulty));
        }
        if self.eat("B^All_") {
            let p = self.processor()?;
            return Ok(self.parens()?.believed_by(p, NonRigidSet::Everyone));
        }
        if self.eat("CC") || self.eat("C□_N") {
            return Ok(self.parens()?.continual_common(NonRigidSet::Nonfaulty));
        }
        if self.eat("C□_All") {
            return Ok(self.parens()?.continual_common(NonRigidSet::Everyone));
        }
        if self.eat("C_N") {
            return Ok(self.parens()?.common(NonRigidSet::Nonfaulty));
        }
        if self.eat("C_All") {
            return Ok(self.parens()?.common(NonRigidSet::Everyone));
        }
        if self.eat("C") {
            return Ok(self.parens()?.common(NonRigidSet::Nonfaulty));
        }
        if self.eat("E_N") {
            return Ok(self.parens()?.everyone(NonRigidSet::Nonfaulty));
        }
        if self.eat("D_All") {
            return Ok(self.parens()?.distributed(NonRigidSet::Everyone));
        }
        if self.eat("D_N") || self.eat("D") {
            return Ok(self.parens()?.distributed(NonRigidSet::Nonfaulty));
        }
        if self.eat("S_All") {
            return Ok(self.parens()?.someone(NonRigidSet::Everyone));
        }
        if self.eat("SK") || self.eat("S_N") {
            return Ok(self.parens()?.someone(NonRigidSet::Nonfaulty));
        }
        if self.eat("E_All") {
            return Ok(self.parens()?.everyone(NonRigidSet::Everyone));
        }
        if self.eat("E") {
            return Ok(self.parens()?.everyone(NonRigidSet::Nonfaulty));
        }
        if self.eat("G") {
            return Ok(self.parens()?.always());
        }
        if self.eat("F") {
            return Ok(self.parens()?.eventually());
        }
        if self.eat("A") {
            return Ok(self.parens()?.always_all());
        }
        if self.eat("S") {
            return Ok(self.parens()?.sometime_all());
        }
        // □̄ (always-all) and ◇̄ (sometime-all) carry a combining macron
        // (U+0304); match them before the bare □ / ◇.
        if self.eat("□\u{304}") {
            return Ok(self.parens()?.always_all());
        }
        if self.eat("◇\u{304}") {
            return Ok(self.parens()?.sometime_all());
        }
        if self.eat("□") {
            return Ok(self.parens()?.always());
        }
        if self.eat("◇") {
            return Ok(self.parens()?.eventually());
        }
        if self.eat("N(") {
            let p = self.processor()?;
            self.expect(")")?;
            return Ok(Formula::Nonfaulty(p));
        }
        if self.peek() == Some(b'p') {
            // `p1∈N` — the Display form of the nonfaulty atom.
            let p = self.processor()?;
            self.expect("∈N")?;
            return Ok(Formula::Nonfaulty(p));
        }
        if self.peek() == Some(b'(') {
            return self.parens();
        }
        Err(self.error("expected a formula"))
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.eat("0") {
            Ok(Value::Zero)
        } else if self.eat("1") {
            Ok(Value::One)
        } else {
            Err(self.error("expected `0` or `1`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn atoms() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
        assert_eq!(parse_formula("E0").unwrap(), Formula::exists(Value::Zero));
        assert_eq!(parse_formula("E1").unwrap(), Formula::exists(Value::One));
        assert_eq!(
            parse_formula("init(2)=0").unwrap(),
            Formula::Initial(p(1), Value::Zero)
        );
        assert_eq!(parse_formula("N(3)").unwrap(), Formula::Nonfaulty(p(2)));
    }

    #[test]
    fn connectives_and_precedence() {
        // & binds tighter than |, which binds tighter than ->.
        let f = parse_formula("E0 & E1 | !E0 -> false").unwrap();
        let expected = Formula::exists(Value::Zero)
            .and(Formula::exists(Value::One))
            .or(Formula::exists(Value::Zero).not())
            .implies(Formula::False);
        assert_eq!(f, expected);
    }

    #[test]
    fn iff_and_right_assoc_implies() {
        let f = parse_formula("E0 <-> E1").unwrap();
        assert_eq!(
            f,
            Formula::exists(Value::Zero).iff(Formula::exists(Value::One))
        );
        let g = parse_formula("E0 -> E1 -> false").unwrap();
        let expected = Formula::exists(Value::Zero)
            .implies(Formula::exists(Value::One).implies(Formula::False));
        assert_eq!(g, expected);
    }

    #[test]
    fn modal_operators() {
        assert_eq!(
            parse_formula("K_1(E0)").unwrap(),
            Formula::exists(Value::Zero).known_by(p(0))
        );
        assert_eq!(
            parse_formula("B_2(E1)").unwrap(),
            Formula::exists(Value::One).believed_by(p(1), NonRigidSet::Nonfaulty)
        );
        assert_eq!(
            parse_formula("CC(E0)").unwrap(),
            Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty)
        );
        assert_eq!(
            parse_formula("C(E0)").unwrap(),
            Formula::exists(Value::Zero).common(NonRigidSet::Nonfaulty)
        );
        assert_eq!(
            parse_formula("E(E0)").unwrap(),
            Formula::exists(Value::Zero).everyone(NonRigidSet::Nonfaulty)
        );
        assert_eq!(
            parse_formula("G(E0)").unwrap(),
            Formula::exists(Value::Zero).always()
        );
        assert_eq!(
            parse_formula("F(E0)").unwrap(),
            Formula::exists(Value::Zero).eventually()
        );
        assert_eq!(
            parse_formula("A(E0)").unwrap(),
            Formula::exists(Value::Zero).always_all()
        );
        assert_eq!(
            parse_formula("S(E0)").unwrap(),
            Formula::exists(Value::Zero).sometime_all()
        );
    }

    #[test]
    fn the_paper_decision_rules_parse() {
        // Z'_i of Proposition 5.1 (with N for the nonrigid set).
        let f = parse_formula("B_1(E0 & CC(E0))").unwrap();
        assert!(f.to_string().contains("C□_N"));
        // Theorem 5.3's condition shape.
        let g = parse_formula("N(1) -> (B_1(E0 & CC(E0)) <-> B_1(E0 & CC(E0)))").unwrap();
        assert!(g.size() > 10);
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            parse_formula("  B_1 ( E0 &   CC( E0 ) ) ").unwrap(),
            parse_formula("B_1(E0&CC(E0))").unwrap()
        );
    }

    #[test]
    fn nested_negation() {
        assert_eq!(
            parse_formula("!!E0").unwrap(),
            Formula::exists(Value::Zero).not().not()
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_formula("E0 &").unwrap_err();
        assert!(err.offset >= 4, "{err}");
        assert!(parse_formula("K_(E0)").is_err());
        assert!(parse_formula("E0 E1").is_err());
        assert!(
            parse_formula("init(0)=1").is_err(),
            "processors are 1-based"
        );
        assert!(parse_formula("").is_err());
        assert!(parse_formula("(E0").is_err());
    }

    #[test]
    fn unicode_display_forms_parse() {
        assert_eq!(parse_formula("∃0").unwrap(), Formula::exists(Value::Zero));
        assert_eq!(parse_formula("⊤").unwrap(), Formula::True);
        assert_eq!(
            parse_formula("¬(∃1)").unwrap(),
            Formula::exists(Value::One).not()
        );
        assert_eq!(
            parse_formula("(∃0 ∧ ∃1)").unwrap(),
            Formula::exists(Value::Zero).and(Formula::exists(Value::One))
        );
        assert_eq!(
            parse_formula("B^N_p2(∃0)").unwrap(),
            Formula::exists(Value::Zero).believed_by(p(1), NonRigidSet::Nonfaulty)
        );
        assert_eq!(
            parse_formula("C□_N(∃0)").unwrap(),
            Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty)
        );
        assert_eq!(parse_formula("p3∈N").unwrap(), Formula::Nonfaulty(p(2)));
        assert_eq!(
            parse_formula("□̄(∃0)").unwrap(),
            Formula::exists(Value::Zero).always_all()
        );
        assert_eq!(
            parse_formula("◇̄(∃0)").unwrap(),
            Formula::exists(Value::Zero).sometime_all()
        );
        assert_eq!(
            parse_formula("init(p1)=0").unwrap(),
            Formula::Initial(p(0), Value::Zero)
        );
    }

    #[test]
    fn display_parse_round_trip_on_samples() {
        let samples = [
            Formula::exists(Value::Zero)
                .and(Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty))
                .believed_by(p(0), NonRigidSet::Nonfaulty),
            Formula::exists(Value::One)
                .common(NonRigidSet::Everyone)
                .implies(Formula::Nonfaulty(p(1))),
            Formula::exists(Value::Zero)
                .everyone(NonRigidSet::Nonfaulty)
                .always_all()
                .not(),
            Formula::True.iff(Formula::False.or(Formula::exists(Value::One))),
            Formula::Initial(p(2), Value::One)
                .known_by(p(0))
                .eventually(),
        ];
        for f in samples {
            let rendered = f.to_string();
            let reparsed = parse_formula(&rendered)
                .unwrap_or_else(|e| panic!("failed to reparse `{rendered}`: {e}"));
            assert_eq!(reparsed, f, "round trip changed `{rendered}`");
        }
    }

    #[test]
    fn display_round_trip_through_semantics() {
        // Parsed formulas evaluate like their builder equivalents.
        use eba_model::{FailureMode, Scenario};
        use eba_sim::GeneratedSystem;
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = crate::Evaluator::new(&system);
        let parsed = parse_formula("CC(E0) -> C(E0)").unwrap();
        assert!(eval.valid(&parsed));
        let strict = parse_formula("C(E0) -> CC(E0)").unwrap();
        assert!(!eval.valid(&strict));
    }
}
