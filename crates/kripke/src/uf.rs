//! Union-find (disjoint-set) structure for reachability computations.

/// A classic union-find with path halving and union by size, used to
/// compute the `S`-reachability components behind `C_S` (common knowledge)
/// and `C□_S` (continual common knowledge).
///
/// # Example
///
/// ```
/// use eba_kripke::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// uf.union(1, 2);
/// assert!(uf.same(0, 3));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `len` singleton components.
    #[must_use]
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns every element to its own singleton component without
    /// reallocating, so batched sweeps can reuse one buffer across many
    /// union sequences.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.size.fill(1);
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s component.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Merges `b`'s component into the component whose **root** is `ra`,
    /// returning the merged component's root. Callers must pass a current
    /// root (the return of [`Self::find`] or a previous `union_root`);
    /// skipping the second `find` makes chain unions — runs of edges
    /// sharing one endpoint, as in bucket traversals — measurably
    /// cheaper than repeated [`Self::union`] calls.
    pub fn union_root(&mut self, ra: usize, b: usize) -> usize {
        debug_assert_eq!(self.parent[ra], ra as u32, "union_root needs a root");
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (mut big, mut small) = (ra, rb);
        if self.size[big] < self.size[small] {
            std::mem::swap(&mut big, &mut small);
        }
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        big
    }

    /// Whether `a` and `b` are in the same component.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Resolves every element's representative, returning a vector mapping
    /// each element to a compact component id in `0..num_components`.
    pub fn component_ids(&mut self) -> (Vec<u32>, usize) {
        let len = self.len();
        let mut ids = vec![u32::MAX; len];
        let mut next = 0u32;
        let mut result = vec![0u32; len];
        // `find` needs `&mut self`, so iterate by index rather than over
        // `result` mutably.
        #[allow(clippy::needless_range_loop)]
        for x in 0..len {
            let root = self.find(x);
            if ids[root] == u32::MAX {
                ids[root] = next;
                next += 1;
            }
            result[x] = ids[root];
        }
        (result, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn component_ids_are_compact() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(3, 4);
        let (ids, count) = uf.component_ids();
        assert_eq!(count, 4);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
        assert!(ids.iter().all(|&i| (i as usize) < count));
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.reset();
        assert_eq!(uf.len(), 4);
        assert!(!uf.same(0, 1));
        let (_, count) = uf.component_ids();
        assert_eq!(count, 4);
    }

    #[test]
    fn union_root_matches_union() {
        let mut a = UnionFind::new(8);
        let mut b = UnionFind::new(8);
        // Chain {1, 3, 5, 7} through union vs union_root.
        for x in [3, 5, 7] {
            a.union(1, x);
        }
        let mut acc = b.find(1);
        for x in [3, 5, 7] {
            acc = b.union_root(acc, x);
        }
        let (ids_a, n_a) = a.component_ids();
        let (ids_b, n_b) = b.component_ids();
        assert_eq!(n_a, n_b);
        assert_eq!(ids_a, ids_b);
        assert_eq!(b.find(acc), acc, "returned value is a root");
    }

    #[test]
    fn large_chain() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert!(uf.same(0, 999));
        let (_, count) = uf.component_ids();
        assert_eq!(count, 1);
    }
}
