//! The 0-chain accept/accuse protocol: message-level omission-mode EBA
//! (Section 6.2, Proposition 6.4).

use eba_model::{ProcSet, ProcessorId, Round, Value};
use eba_sim::Protocol;

/// Message-level implementation of the terminating omission-mode EBA
/// protocol `FIP(Z⁰, O⁰)` of Section 6.2, with linear-size messages.
///
/// Rules:
///
/// * every processor broadcasts, every round, the set of processors it
///   knows to be faulty (in the sending-omission mode a missing message
///   *proves* its sender faulty, and processors never lie, so
///   accusations are sound);
/// * a 0-holder decides 0 at time 0 and broadcasts the chain `[itself]`
///   in round 1;
/// * a processor that receives, in round `m`, a chain of `m` distinct
///   processors ending in a sender it does not (yet) know to be faulty,
///   *accepts*: it decides 0 and broadcasts the chain extended with
///   itself in round `m + 1` (cf. the `∃0*` acceptance rule and \[DS82\]);
/// * a processor that completes a round in which it learns of **no new
///   failures** without having accepted decides 1 (the quiet-round rule
///   from the proof of Proposition 6.4).
///
/// In a run with `f` actual failures, at most `f` rounds can each reveal
/// a new failure, so every nonfaulty processor decides by time `f + 1`.
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, InitialConfig, ProcessorId, Time, Value};
/// use eba_protocols::ChainOmission;
/// use eba_sim::execute;
///
/// let protocol = ChainOmission::new(4);
/// let config = InitialConfig::uniform(4, Value::One);
/// let trace = execute(&protocol, &config, &FailurePattern::failure_free(4), Time::new(5)).unwrap();
/// // Failure-free all-ones: round 1 is quiet, decide 1 at time 1 = f+1.
/// assert_eq!(trace.decision_time(ProcessorId::new(0)), Some(Time::new(1)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChainOmission {
    n: usize,
}

impl ChainOmission {
    /// Creates the protocol for `n` processors.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ChainOmission { n }
    }
}

/// A [`ChainOmission`] message: fault accusations plus an optional
/// 0-chain being relayed.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ChainMessage {
    /// Every processor the sender knows to be faulty.
    pub known_faulty: ProcSet,
    /// A 0-chain the sender accepted in the previous round (ending with
    /// the sender itself), if any.
    pub chain: Option<Vec<ProcessorId>>,
}

/// The local state of [`ChainOmission`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ChainState {
    me: ProcessorId,
    n: u8,
    /// Processors known to be faulty (own observations + accusations).
    pub known_faulty: ProcSet,
    /// The accepted chain (ending with `me`) and the round to relay it in.
    accepted: Option<(Vec<ProcessorId>, u16)>,
    /// Rounds completed.
    now: u16,
    /// Latched decision.
    decided: Option<Value>,
}

impl Protocol for ChainOmission {
    type State = ChainState;
    type Message = ChainMessage;

    fn name(&self) -> &str {
        "ChainOmission"
    }

    fn initial_state(&self, p: ProcessorId, n: usize, value: Value) -> ChainState {
        assert_eq!(
            n, self.n,
            "protocol instantiated for a different system size"
        );
        let zero = value == Value::Zero;
        ChainState {
            me: p,
            n: n as u8,
            known_faulty: ProcSet::empty(),
            // A 0-holder "accepts" its own chain at time 0 and relays it
            // in round 1.
            accepted: zero.then(|| (vec![p], 1)),
            now: 0,
            decided: zero.then_some(Value::Zero),
        }
    }

    fn message(
        &self,
        state: &ChainState,
        _from: ProcessorId,
        _to: ProcessorId,
        round: Round,
    ) -> Option<ChainMessage> {
        let chain = match &state.accepted {
            Some((chain, relay_round)) if *relay_round == round.number() => Some(chain.clone()),
            _ => None,
        };
        Some(ChainMessage {
            known_faulty: state.known_faulty,
            chain,
        })
    }

    fn transition(
        &self,
        state: &ChainState,
        _p: ProcessorId,
        round: Round,
        received: &[Option<ChainMessage>],
    ) -> ChainState {
        let mut next = state.clone();
        next.now += 1;

        // 1. Fault detection: a missing message proves its sender faulty;
        //    received accusations are sound and adopted.
        let mut heard = ProcSet::empty();
        for (j, msg) in received.iter().enumerate() {
            if let Some(msg) = msg {
                heard.insert(ProcessorId::new(j));
                next.known_faulty = next.known_faulty | msg.known_faulty;
            }
        }
        let everyone_else = ProcSet::full(self.n) - ProcSet::singleton(state.me);
        next.known_faulty = next.known_faulty | (everyone_else - heard);
        // Never accuse ourselves (we cannot observe our own omissions).
        next.known_faulty.remove(state.me);
        let learned_new_fault = next.known_faulty != state.known_faulty;

        // 2. Chain acceptance: a chain of `m` distinct processors ending
        //    in its sender, received in round m, sender not known faulty.
        if next.accepted.is_none() {
            for (j, msg) in received.iter().enumerate() {
                let sender = ProcessorId::new(j);
                let Some(ChainMessage {
                    chain: Some(chain), ..
                }) = msg
                else {
                    continue;
                };
                if chain.len() != round.number() as usize {
                    continue; // stale or malformed: reject
                }
                if chain.last() != Some(&sender) {
                    continue;
                }
                if next.known_faulty.contains(sender) {
                    continue;
                }
                let members: ProcSet = chain.iter().copied().collect();
                if members.len() != chain.len() || members.contains(state.me) {
                    continue;
                }
                let mut extended = chain.clone();
                extended.push(state.me);
                next.accepted = Some((extended, round.number() + 1));
                break;
            }
        }

        // 3. Decision: accepted chains mean 0; a quiet round means 1.
        if next.decided.is_none() {
            if next.accepted.is_some() {
                next.decided = Some(Value::Zero);
            } else if !learned_new_fault {
                next.decided = Some(Value::One);
            }
        }

        next
    }

    fn output(&self, state: &ChainState, _p: ProcessorId) -> Option<Value> {
        state.decided
    }

    fn message_units(&self, message: &ChainMessage) -> u64 {
        // One word for the accusation set plus the relayed chain, if any.
        1 + message.chain.as_ref().map_or(0, |c| c.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{
        enumerate, sample, FailureMode, FailurePattern, FaultyBehavior, InitialConfig, Scenario,
        Time,
    };
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn zero_holders_decide_at_time_zero() {
        let protocol = ChainOmission::new(3);
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &FailurePattern::failure_free(3),
            Time::new(3),
        );
        assert_eq!(trace.decision_time(p(0)), Some(Time::ZERO));
        assert_eq!(trace.decided_value(p(0)), Some(Value::Zero));
        // Chain [p0] reaches everyone in round 1.
        for i in 1..3 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(1)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::Zero));
        }
    }

    #[test]
    fn quiet_first_round_decides_one() {
        let protocol = ChainOmission::new(4);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &FailurePattern::failure_free(4),
            Time::new(3),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(1)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
    }

    #[test]
    fn selective_reveal_still_agrees() {
        // Faulty 0-holder p0 sends its chain only to p1; p1 relays to
        // everyone, so p2 accepts the 2-chain in round 2.
        let protocol = ChainOmission::new(3);
        let others = ProcSet::full(3) - ProcSet::singleton(p(0));
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Omission {
                omissions: vec![others - ProcSet::singleton(p(1)), others, others],
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(3),
        );
        assert_eq!(trace.decided_value(p(1)), Some(Value::Zero));
        assert_eq!(trace.decision_time(p(1)), Some(Time::new(1)));
        assert_eq!(trace.decided_value(p(2)), Some(Value::Zero));
        assert_eq!(trace.decision_time(p(2)), Some(Time::new(2)));
        assert!(trace.satisfies_weak_agreement());
    }

    #[test]
    fn silent_zero_holder_leads_to_one() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 3).unwrap();
        let protocol = ChainOmission::new(3);
        let pattern = sample::silent_processor(&scenario, p(0));
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(3),
        );
        // Round 1 reveals p0 faulty; round 2 is quiet: decide 1 at f+1=2.
        for i in 1..3 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(2)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
        assert!(trace.satisfies_weak_agreement());
        assert!(trace.satisfies_weak_validity());
    }

    #[test]
    fn exhaustive_small_omission_eba_with_f_plus_one_bound() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 3).unwrap();
        let protocol = ChainOmission::new(3);
        for pattern in enumerate::patterns(&scenario) {
            let f = pattern.num_faulty() as u16;
            for config in InitialConfig::enumerate_all(3) {
                let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
                for q in trace.nonfaulty() {
                    let t = trace
                        .decision_time(q)
                        .unwrap_or_else(|| panic!("{q} undecided: {config} {pattern}"));
                    assert!(
                        t.ticks() <= f + 1,
                        "{q} decided at {t}, f = {f}: {config} {pattern}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_larger_omission_scenarios_agree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let scenario = Scenario::new(6, 2, FailureMode::Omission, 4).unwrap();
        let protocol = ChainOmission::new(6);
        let sampler = sample::PatternSampler::new(scenario);
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..300 {
            let config = sample::random_config(6, &mut rng);
            let pattern = sampler.sample(&mut rng);
            let f = pattern.num_faulty() as u16;
            let trace = execute(&protocol, &config, &pattern, scenario.horizon());
            assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
            assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
            for q in trace.nonfaulty() {
                let t = trace.decision_time(q).expect("nonfaulty must decide");
                assert!(t.ticks() <= f + 1, "{config} {pattern}");
            }
        }
    }
}
