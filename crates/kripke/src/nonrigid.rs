//! State sets and nonrigid sets of processors.
//!
//! The word-streaming set operations (union, difference, subset, count)
//! run on the 4-wide unrolled block kernels of [`crate::kernels`]; this
//! module keeps the set semantics, including the trailing-zero-word
//! trimming invariant that makes equal sets word-for-word equal. That
//! same invariant is what lets the shared set-representation backend
//! ([`crate::setrepr`]) intern `canonical()` families by content: equal
//! families intern to equal node-table roots.

use crate::kernels;
use eba_model::{ProcessorId, Value};
use eba_sim::{ViewId, ViewTable};

/// A set of [`ViewId`]s stored as a growable bitmask over view indices.
///
/// View ids are dense table indices, so a word per 64 views beats a hash
/// set on every operation the engine runs hot: membership is one indexed
/// load, subset/union/difference are word loops, equality is a `memcmp`,
/// and the canonical content (for [`crate::KnowledgeCache`] keys) is the
/// word vector itself — no sorting, no per-view hashing.
///
/// Trailing all-zero words are kept trimmed so that equal sets have equal
/// word vectors regardless of insertion history.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ViewSet {
    words: Vec<u64>,
}

impl ViewSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Adds `v`; returns `true` if newly added.
    pub fn insert(&mut self, v: ViewId) -> bool {
        let (word, bit) = (v.index() / 64, v.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether `v` is in the set.
    #[must_use]
    pub fn contains(&self, v: ViewId) -> bool {
        self.words
            .get(v.index() / 64)
            .is_some_and(|w| w & (1 << (v.index() % 64)) != 0)
    }

    /// Number of views in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        kernels::count_ones(&self.words)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // Trailing zero words are trimmed, so any word implies a bit.
        self.words.is_empty()
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &ViewSet) -> bool {
        if self.words.len() > other.words.len() {
            return false; // a set bit past `other`'s top word (invariant)
        }
        kernels::is_subset(&self.words, &other.words[..self.words.len()])
    }

    /// The union `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &ViewSet) -> ViewSet {
        let (long, short) = if self.words.len() >= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let mut words = long.clone();
        kernels::or_assign(&mut words[..short.len()], short);
        ViewSet { words }
    }

    /// The difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &ViewSet) -> ViewSet {
        let mut words = self.words.clone();
        let overlap = words.len().min(other.words.len());
        kernels::andnot_assign(&mut words[..overlap], &other.words[..overlap]);
        while words.last() == Some(&0) {
            words.pop();
        }
        ViewSet { words }
    }

    /// Iterates the views in increasing index order (word-parallel
    /// `trailing_zeros` walk).
    pub fn iter(&self) -> impl Iterator<Item = ViewId> + '_ {
        self.words.iter().enumerate().flat_map(|(k, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    // Raw-index round trip, audited for the generalized
                    // (exchange-agnostic) table: every set bit was put
                    // here by `insert(ViewId)`, whose index came from a
                    // `u32` id, so `k * 64 + bit` always fits and the
                    // `from_index` panic path is unreachable.
                    Some(ViewId::from_index(k * 64 + bit))
                }
            })
        })
    }

    /// The backing words (canonical: trailing zero words trimmed). Word
    /// `k` holds views `64k..64k+64`, lowest index in bit 0.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A family of local-state sets, one per processor: `A = (A_1, …, A_n)`
/// where `A_i` is a set of full-information views owned by processor `i`.
///
/// This is the paper's notion of a *decision set* (Section 4) viewed
/// structurally: "processor `i`'s current state lies in `A_i`" is a
/// property of a point that depends only on `i`'s local state. State sets
/// double as the state-dependent component of nonrigid sets (`N ∧ A`).
///
/// # Example
///
/// ```
/// use eba_kripke::StateSets;
/// use eba_model::{ProcessorId, Value};
/// use eba_sim::ViewTable;
///
/// let mut table = ViewTable::new();
/// let v = table.leaf(ProcessorId::new(0), Value::Zero);
/// let mut sets = StateSets::empty(2);
/// sets.insert(ProcessorId::new(0), v);
/// assert!(sets.contains(ProcessorId::new(0), v));
/// assert!(!sets.contains(ProcessorId::new(1), v));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateSets {
    per_proc: Vec<ViewSet>,
}

impl StateSets {
    /// Creates an empty family for `n` processors.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        StateSets {
            per_proc: vec![ViewSet::new(); n],
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.per_proc.len()
    }

    /// Adds view `v` to `A_p`; returns `true` if newly added.
    pub fn insert(&mut self, p: ProcessorId, v: ViewId) -> bool {
        self.per_proc[p.index()].insert(v)
    }

    /// Whether `v ∈ A_p`.
    #[must_use]
    pub fn contains(&self, p: ProcessorId, v: ViewId) -> bool {
        self.per_proc[p.index()].contains(v)
    }

    /// The set `A_p`.
    #[must_use]
    pub fn of(&self, p: ProcessorId) -> &ViewSet {
        &self.per_proc[p.index()]
    }

    /// Total number of views across all processors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_proc.iter().map(ViewSet::len).sum()
    }

    /// Whether every `A_i` is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_proc.iter().all(ViewSet::is_empty)
    }

    /// Whether `A_i ⊆ B_i` for every processor.
    ///
    /// # Panics
    ///
    /// Panics if the families have different `n`.
    #[must_use]
    pub fn is_subset_of(&self, other: &StateSets) -> bool {
        assert_eq!(self.n(), other.n());
        self.per_proc
            .iter()
            .zip(&other.per_proc)
            .all(|(a, b)| a.is_subset(b))
    }

    /// Pointwise union.
    ///
    /// # Panics
    ///
    /// Panics if the families have different `n`.
    #[must_use]
    pub fn union(&self, other: &StateSets) -> StateSets {
        assert_eq!(self.n(), other.n());
        StateSets {
            per_proc: self
                .per_proc
                .iter()
                .zip(&other.per_proc)
                .map(|(a, b)| a.union(b))
                .collect(),
        }
    }

    /// Pointwise difference `A_i \ B_i`.
    ///
    /// # Panics
    ///
    /// Panics if the families have different `n`.
    #[must_use]
    pub fn difference(&self, other: &StateSets) -> StateSets {
        assert_eq!(self.n(), other.n());
        StateSets {
            per_proc: self
                .per_proc
                .iter()
                .zip(&other.per_proc)
                .map(|(a, b)| a.difference(b))
                .collect(),
        }
    }

    /// Builds the family `{v : predicate(p, v)}` over an explicit list of
    /// `(owner, view)` pairs.
    pub fn from_views<F>(n: usize, views: &[(ProcessorId, ViewId)], predicate: F) -> StateSets
    where
        F: Fn(ProcessorId, ViewId) -> bool,
    {
        let mut sets = StateSets::empty(n);
        for &(p, v) in views {
            if predicate(p, v) {
                sets.insert(p, v);
            }
        }
        sets
    }

    /// The family's content in canonical form: per processor, the
    /// (trimmed) membership words of `A_i`. Equal families produce equal
    /// canonical forms, which is what lets the shared
    /// [`crate::KnowledgeCache`] recognize the same family across
    /// evaluators with different id numberings — and since the backing
    /// store *is* the bitmask, canonicalization is a clone, with no
    /// sorting or per-view hashing.
    #[must_use]
    pub fn canonical(&self) -> Vec<Box<[u64]>> {
        self.per_proc
            .iter()
            .map(|views| Box::from(views.words()))
            .collect()
    }

    /// Convenience: the family of all views (from `table`) whose owner has
    /// learned of an initial value `value` — e.g. the states where
    /// `B^N_i ∃0` is about to be tested. Mostly useful in tests.
    #[must_use]
    pub fn with_value_seen(table: &ViewTable, n: usize, value: Value) -> StateSets {
        let mut sets = StateSets::empty(n);
        for v in table.ids() {
            if table.exists_value(v, value) {
                let owner = table.proc(v);
                if owner.index() < n {
                    sets.insert(owner, v);
                }
            }
        }
        sets
    }
}

/// An identifier of a [`StateSets`] registered with an
/// [`crate::Evaluator`]; formulas refer to state sets by id so they stay
/// hashable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateSetsId(pub(crate) u32);

/// An identifier of a per-run predicate registered with an
/// [`crate::Evaluator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RunPredId(pub(crate) u32);

/// An identifier of a per-point predicate registered with an
/// [`crate::Evaluator`] (e.g. the time-dependent `∃0*` of Section 6.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PointPredId(pub(crate) u32);

/// A nonrigid set of processors (Section 3.1): a function from points to
/// sets of processors.
///
/// The reproduction needs three shapes: the constant full set, the
/// nonfaulty set `N`, and `N ∧ A` for a state-set family `A` (the
/// decision-set-indexed nonrigid sets of Sections 4–6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NonRigidSet {
    /// The constant set of all processors.
    Everyone,
    /// The nonfaulty processors `N` (constant along a run, varying across
    /// runs).
    Nonfaulty,
    /// `N ∧ A`: nonfaulty processors whose current local state lies in
    /// their component of the registered state-set family.
    NonfaultyAnd(StateSetsId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn insert_contains_len() {
        let mut table = ViewTable::new();
        let v0 = table.leaf(p(0), Value::Zero);
        let v1 = table.leaf(p(1), Value::One);
        let mut sets = StateSets::empty(2);
        assert!(sets.is_empty());
        assert!(sets.insert(p(0), v0));
        assert!(!sets.insert(p(0), v0));
        sets.insert(p(1), v1);
        assert_eq!(sets.len(), 2);
        assert!(sets.contains(p(0), v0));
        assert!(!sets.contains(p(1), v0));
    }

    #[test]
    fn subset_and_union() {
        let mut table = ViewTable::new();
        let v0 = table.leaf(p(0), Value::Zero);
        let v1 = table.leaf(p(0), Value::One);
        let mut a = StateSets::empty(1);
        a.insert(p(0), v0);
        let mut b = StateSets::empty(1);
        b.insert(p(0), v0);
        b.insert(p(0), v1);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let u = a.union(&b);
        assert_eq!(u, b);
    }

    #[test]
    fn with_value_seen_collects_views() {
        let mut table = ViewTable::new();
        let zero = table.leaf(p(0), Value::Zero);
        let one = table.leaf(p(1), Value::One);
        let sets = StateSets::with_value_seen(&table, 2, Value::Zero);
        assert!(sets.contains(p(0), zero));
        assert!(!sets.contains(p(1), one));
    }

    #[test]
    fn equality_supports_fixed_point_detection() {
        let mut table = ViewTable::new();
        let v = table.leaf(p(0), Value::Zero);
        let mut a = StateSets::empty(1);
        a.insert(p(0), v);
        let mut b = StateSets::empty(1);
        b.insert(p(0), v);
        assert_eq!(a, b);
    }
}
