//! Experiment EXP2; see `eba_bench::experiments::exp2`.
fn main() {
    for table in eba_bench::experiments::exp2() {
        table.print();
    }
}
