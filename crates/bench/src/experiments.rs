//! The experiment suite: one experiment per paper claim (see DESIGN.md §5
//! for the index and EXPERIMENTS.md for recorded outputs).
//!
//! Every function returns the tables it would print, so the binaries can
//! print them and the tests can assert on them.

use crate::common::{
    compare_times, exhaustive, fip_stats, full_mode, message_level_times, one_zero_config,
};
use crate::table::{fmt_f64, Table};
use eba_core::protocols::{
    crash_rule, f_lambda_2, f_star, sba_common_knowledge_pair, zero_chain_pair,
};
use eba_core::{
    check_optimality, dominates, verify_properties, Constructor, DecisionPair, FipDecisions,
};
use eba_kripke::{axioms, Evaluator, Formula, KnowledgeCache, NonRigidSet};
use eba_model::sample::{self, PatternSampler};
use eba_model::{FailureMode, InitialConfig, ProcessorId, Scenario, Value};
use eba_protocols::{ChainOmission, EarlyStoppingCrash, FloodMin, P0Opt, Relay, SbaWaste};
use eba_sim::stats::DecisionStats;
use eba_sim::{execute_unchecked, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// EXP1 — Proposition 2.1: no optimum EBA protocol. `P0` and `P1` each
/// decide their favored value at time 0; neither dominates the other; the
/// silence-chain adversary forces `t + 1` rounds.
pub fn exp1() -> Vec<Table> {
    let mut cross = Table::new(
        "EXP1: P0 vs P1 (Prop 2.1) — crash, exhaustive",
        &[
            "n",
            "t",
            "pairs P0 earlier",
            "pairs P1 earlier",
            "either dominates?",
        ],
    );
    for (n, t) in [(3usize, 1usize), (4, 1), (4, 2)] {
        let system = exhaustive(n, t, FailureMode::Crash, t as u16 + 2);
        let p0 = message_level_times(&Relay::p0(t), &system);
        let p1 = message_level_times(&Relay::p1(t), &system);
        let (dom01, _, e01, ..) = compare_times(&p0, &p1);
        let (dom10, _, e10, ..) = compare_times(&p1, &p0);
        cross.row([
            n.to_string(),
            t.to_string(),
            e01.to_string(),
            e10.to_string(),
            (dom01 || dom10).to_string(),
        ]);
    }

    let mut lower = Table::new(
        "EXP1b: silence-chain adversary forces t+1 rounds",
        &["n", "t", "protocol", "slowest nonfaulty decision", "t+1"],
    );
    for t in [1usize, 2, 3] {
        let n = t + 3;
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let chain: Vec<ProcessorId> = (0..t).map(ProcessorId::new).collect();
        let pattern = sample::silence_chain(&scenario, &chain);
        let config = one_zero_config(n);
        for (name, time) in [
            ("P0", {
                let trace = execute_unchecked(&Relay::p0(t), &config, &pattern, scenario.horizon());
                trace.last_nonfaulty_decision_time()
            }),
            ("P0opt", {
                let trace =
                    execute_unchecked(&P0Opt::new(t), &config, &pattern, scenario.horizon());
                trace.last_nonfaulty_decision_time()
            }),
        ] {
            lower.row([
                n.to_string(),
                t.to_string(),
                name.to_owned(),
                time.map_or_else(|| "-".into(), |t| t.to_string()),
                (t + 1).to_string(),
            ]);
        }
    }
    vec![cross, lower]
}

/// EXP2 — Section 2.2: `P0opt` dominates `P0`, strictly; exhaustive small
/// scenarios plus seeded samples at larger `n`.
pub fn exp2() -> Vec<Table> {
    let mut table = Table::new(
        "EXP2: P0opt vs P0 (Section 2.2) — crash",
        &[
            "scenario",
            "pairs",
            "earlier",
            "equal",
            "later",
            "dominates",
            "strict",
        ],
    );
    for (n, t) in [(3usize, 1usize), (4, 1), (4, 2)] {
        let system = exhaustive(n, t, FailureMode::Crash, t as u16 + 2);
        let opt = message_level_times(&P0Opt::new(t), &system);
        let p0 = message_level_times(&Relay::p0(t), &system);
        let (dom, strict, earlier, equal, later) = compare_times(&opt, &p0);
        table.row([
            format!("n={n} t={t} exhaustive"),
            (earlier + equal + later).to_string(),
            earlier.to_string(),
            equal.to_string(),
            later.to_string(),
            dom.to_string(),
            strict.to_string(),
        ]);
    }
    // Sampled larger scenarios.
    for (n, t, runs, seed) in [
        (8usize, 2usize, 1000usize, 1u64),
        (16, 4, 600, 2),
        (32, 8, 300, 3),
    ] {
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = PatternSampler::new(scenario);
        let mut earlier = 0u64;
        let mut equal = 0u64;
        let mut later = 0u64;
        for _ in 0..runs {
            let config = sample::random_config_biased(n, 1.0 / n as f64, &mut rng);
            let pattern = sampler.sample(&mut rng);
            let a = execute_unchecked(&P0Opt::new(t), &config, &pattern, scenario.horizon());
            let b = execute_unchecked(&Relay::p0(t), &config, &pattern, scenario.horizon());
            for p in pattern.nonfaulty_set() {
                match (a.decision_time(p), b.decision_time(p)) {
                    (Some(ta), Some(tb)) if ta < tb => earlier += 1,
                    (Some(ta), Some(tb)) if ta > tb => later += 1,
                    (Some(_), Some(_)) => equal += 1,
                    _ => {}
                }
            }
        }
        table.row([
            format!("n={n} t={t} sampled({runs})"),
            (earlier + equal + later).to_string(),
            earlier.to_string(),
            equal.to_string(),
            later.to_string(),
            (later == 0).to_string(),
            (later == 0 && earlier > 0).to_string(),
        ]);
    }
    vec![table]
}

/// EXP3 — Theorems 6.1 and 6.2: `F^{Λ,2} = FIP(Z^cr, O^cr)` and, for
/// `t = 1`, `F^{Λ,2} ≅ P0opt` at corresponding points; for `t ≥ 2` the
/// strict-domination finding.
pub fn exp3() -> Vec<Table> {
    let mut table = Table::new(
        "EXP3: F^{Λ,2} vs FIP(Z^cr,O^cr) vs P0opt (Thm 6.1/6.2) — crash",
        &[
            "scenario",
            "comparison",
            "equal",
            "F earlier",
            "F later",
            "verdict",
        ],
    );
    let mut scenarios = vec![(3usize, 1usize), (4, 1)];
    if full_mode() {
        scenarios.push((4, 2));
    }
    for (n, t) in scenarios {
        let system = exhaustive(n, t, FailureMode::Crash, t as u16 + 2);
        let mut ctor = Constructor::new(&system);
        let fl2 = f_lambda_2(&mut ctor);
        let rule = crash_rule(&mut ctor);
        let d_fl2 = FipDecisions::compute(&system, &fl2, "F^{Λ,2}");
        let d_rule = FipDecisions::compute(&system, &rule, "FIP(Z^cr,O^cr)");

        let fwd = dominates(&system, &d_fl2, &d_rule);
        let bwd = dominates(&system, &d_rule, &d_fl2);
        table.row([
            format!("n={n} t={t}"),
            "F^{Λ,2} vs FIP(Z^cr,O^cr)".into(),
            fwd.equal.to_string(),
            fwd.earlier.to_string(),
            bwd.earlier.to_string(),
            if fwd.equivalent_times() && bwd.equivalent_times() {
                "equal (Thm 6.1 ✓)".into()
            } else {
                "DIVERGED".to_owned()
            },
        ]);

        let knowledge: Vec<Vec<Option<eba_model::Time>>> = system
            .run_ids()
            .map(|run| {
                ProcessorId::all(n)
                    .map(|p| {
                        system
                            .nonfaulty(run)
                            .contains(p)
                            .then(|| d_fl2.decision_time(run, p))
                            .flatten()
                    })
                    .collect()
            })
            .collect();
        let message = message_level_times(&P0Opt::new(t), &system);
        let (dom, strict, earlier, equal, later) = compare_times(&knowledge, &message);
        let verdict = if earlier == 0 && later == 0 {
            "equal (Thm 6.2 ✓)".to_owned()
        } else if dom && strict {
            "F^{Λ,2} strictly dominates (t ≥ 2 finding)".to_owned()
        } else {
            "DIVERGED".to_owned()
        };
        table.row([
            format!("n={n} t={t}"),
            "F^{Λ,2} vs P0opt".into(),
            equal.to_string(),
            earlier.to_string(),
            later.to_string(),
            verdict,
        ]);

        let optimal = check_optimality(&mut ctor, &fl2).is_optimal();
        table.row([
            format!("n={n} t={t}"),
            "Thm 5.3 optimality of F^{Λ,2}".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            optimal.to_string(),
        ]);
    }
    vec![table]
}

/// EXP4 — Proposition 6.3: omission mode, `t > 1`, `n ≥ t + 2`: runs of
/// `F^{Λ,2}` in which nonfaulty processors never decide.
pub fn exp4() -> Vec<Table> {
    let mut table = Table::new(
        "EXP4: F^{Λ,2} non-decision in omission mode (Prop 6.3)",
        &[
            "scenario",
            "runs",
            "undecided runs",
            "witness run undecided",
            "nontrivial agreement",
        ],
    );
    let system = exhaustive(4, 2, FailureMode::Omission, 2);
    let scenario = *system.scenario();
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let d = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
    let report = verify_properties(&system, &d);

    let mut undecided_runs = 0u64;
    for run in system.run_ids() {
        if system
            .nonfaulty(run)
            .iter()
            .any(|p| d.decision(run, p).is_none())
        {
            undecided_runs += 1;
        }
    }
    let witness_pattern = sample::silent_processor(&scenario, ProcessorId::new(0));
    let witness = system
        .find_run(&InitialConfig::uniform(4, Value::One), &witness_pattern)
        .expect("witness run generated");
    let witness_undecided = system
        .nonfaulty(witness)
        .iter()
        .all(|p| d.decision(witness, p).is_none());

    table.row([
        scenario.to_string(),
        system.num_runs().to_string(),
        undecided_runs.to_string(),
        witness_undecided.to_string(),
        report.is_nontrivial_agreement().to_string(),
    ]);

    // Contrast: crash mode — no undecided runs.
    let crash_system = exhaustive(4, 2, FailureMode::Crash, 4);
    let mut crash_ctor = Constructor::new(&crash_system);
    let crash_pair = f_lambda_2(&mut crash_ctor);
    let crash_d = FipDecisions::compute(&crash_system, &crash_pair, "F^{Λ,2}");
    let crash_report = verify_properties(&crash_system, &crash_d);
    table.row([
        crash_system.scenario().to_string(),
        crash_system.num_runs().to_string(),
        crash_report.decision_violations.len().to_string(),
        "-".into(),
        crash_report.is_eba().to_string(),
    ]);
    vec![table]
}

/// EXP5 — Proposition 6.4: the 0-chain protocol decides by time `f + 1`;
/// knowledge level exhaustively, message level at scale, sweeping `f`.
pub fn exp5() -> Vec<Table> {
    let mut knowledge = Table::new(
        "EXP5a: FIP(Z⁰,O⁰) decision times by f (knowledge level, exhaustive omission)",
        &[
            "scenario",
            "f",
            "nonfaulty decisions",
            "mean",
            "max",
            "bound f+1",
            "ok",
        ],
    );
    for (n, t) in [(3usize, 1usize), (4, 1)] {
        let system = exhaustive(n, t, FailureMode::Omission, t as u16 + 2);
        let mut ctor = Constructor::new(&system);
        let pair = zero_chain_pair(&mut ctor);
        let d = FipDecisions::compute(&system, &pair, "FIP(Z⁰,O⁰)");
        for f in 0..=t {
            let mut stats = DecisionStats::new();
            let mut ok = true;
            for run in system.run_ids() {
                if system.run(run).pattern.num_faulty() != f {
                    continue;
                }
                for p in system.nonfaulty(run) {
                    let dec = d.decision(run, p);
                    stats.record(dec);
                    ok &= dec.is_some_and(|d| d.time.ticks() <= f as u16 + 1);
                }
            }
            knowledge.row([
                format!("n={n} t={t}"),
                f.to_string(),
                stats.decided().to_string(),
                fmt_f64(stats.mean_time()),
                stats
                    .max_time()
                    .map_or_else(|| "-".into(), |t| t.to_string()),
                (f + 1).to_string(),
                ok.to_string(),
            ]);
        }
    }

    let mut message = Table::new(
        "EXP5b: ChainOmission decision times by f (message level, sampled)",
        &["n", "t", "f", "runs", "mean", "max", "bound f+1", "ok"],
    );
    for (n, t) in [(8usize, 3usize), (16, 6), (32, 8)] {
        let scenario =
            Scenario::new(n, t, FailureMode::Omission, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(5);
        for f in [0, t / 2, t] {
            let sampler = PatternSampler::new(scenario).exact_faulty(f);
            let mut stats = DecisionStats::new();
            let mut ok = true;
            let runs = 200;
            for _ in 0..runs {
                let config = sample::random_config_biased(n, 0.5 / n as f64, &mut rng);
                let pattern = sampler.sample(&mut rng);
                let trace = execute_unchecked(
                    &ChainOmission::new(n),
                    &config,
                    &pattern,
                    scenario.horizon(),
                );
                ok &= trace.satisfies_weak_agreement() && trace.satisfies_weak_validity();
                for p in trace.nonfaulty() {
                    let dec = trace.decision(p);
                    stats.record(dec);
                    ok &= dec.is_some_and(|d| d.time.ticks() <= f as u16 + 1);
                }
            }
            message.row([
                n.to_string(),
                t.to_string(),
                f.to_string(),
                runs.to_string(),
                fmt_f64(stats.mean_time()),
                stats
                    .max_time()
                    .map_or_else(|| "-".into(), |t| t.to_string()),
                (f + 1).to_string(),
                ok.to_string(),
            ]);
        }
    }
    vec![knowledge, message]
}

/// EXP6 — Proposition 5.1, Theorem 5.2, Proposition 6.6: the two-step
/// optimization from several starting protocols, with domination and
/// optimality verdicts and fixed-point step counts.
pub fn exp6() -> Vec<Table> {
    let mut table = Table::new(
        "EXP6: two-step optimization (Prop 5.1 / Thm 5.2 / Prop 6.6)",
        &[
            "scenario",
            "base protocol",
            "F² dominates base",
            "strictly",
            "base optimal",
            "F² optimal",
            "fixed point by step",
        ],
    );

    // Crash mode, from F^Λ and from the crash rule (already optimal: F²
    // changes nothing). Both cases run over one system with a shared
    // knowledge cache, so the second constructor reuses the first's
    // reachability computations.
    {
        let system = exhaustive(3, 1, FailureMode::Crash, 3);
        let cache = KnowledgeCache::new();
        let mut ctor = Constructor::with_cache(&system, cache.clone());
        let base = DecisionPair::empty(3);
        run_exp6_case(&mut table, &system, &mut ctor, &base, "F^Λ (never decide)");
        let mut ctor = Constructor::with_cache(&system, cache);
        let base = crash_rule(&mut ctor);
        run_exp6_case(&mut table, &system, &mut ctor, &base, "FIP(Z^cr,O^cr)");
    }
    // Omission mode, from FIP(Z⁰,O⁰) — Proposition 6.6's F*.
    {
        let system = exhaustive(3, 1, FailureMode::Omission, 2);
        let mut ctor = Constructor::new(&system);
        let base = zero_chain_pair(&mut ctor);
        run_exp6_case(&mut table, &system, &mut ctor, &base, "FIP(Z⁰,O⁰)");
    }
    {
        let system = exhaustive(4, 1, FailureMode::Omission, 3);
        let mut ctor = Constructor::new(&system);
        let base = zero_chain_pair(&mut ctor);
        run_exp6_case(&mut table, &system, &mut ctor, &base, "FIP(Z⁰,O⁰)");
    }
    vec![table]
}

fn run_exp6_case(
    table: &mut Table,
    system: &eba_sim::GeneratedSystem,
    ctor: &mut Constructor<'_>,
    base: &DecisionPair,
    name: &str,
) {
    let optimized = ctor.optimize(base);
    let d_base = FipDecisions::compute(system, base, name);
    let d_opt = FipDecisions::compute(system, &optimized, "F²");
    let dom = dominates(system, &d_opt, &d_base);
    let base_optimal = check_optimality(ctor, base).is_optimal();
    let opt_optimal = check_optimality(ctor, &optimized).is_optimal();
    let (_, steps) = ctor.optimize_to_fixed_point(base, 8);
    table.row([
        system.scenario().to_string(),
        name.to_owned(),
        dom.dominates.to_string(),
        dom.strict.to_string(),
        base_optimal.to_string(),
        opt_optimal.to_string(),
        steps.to_string(),
    ]);
}

/// EXP7 — EBA vs SBA (the \[DRS90\] motivation): exact common-knowledge SBA
/// against the optimal EBA protocol.
pub fn exp7() -> Vec<Table> {
    let mut table = Table::new(
        "EXP7: optimal EBA vs common-knowledge SBA (crash, exhaustive)",
        &[
            "scenario",
            "EBA mean",
            "SBA mean",
            "EBA max",
            "SBA max",
            "rounds saved",
            "SBA simultaneous",
        ],
    );
    for (n, t) in [(3usize, 1usize), (4, 1), (3, 2)] {
        let system = exhaustive(n, t, FailureMode::Crash, t as u16 + 2);
        let mut ctor = Constructor::new(&system);
        let eba_pair = f_lambda_2(&mut ctor);
        let sba_pair = sba_common_knowledge_pair(&mut ctor);
        let d_eba = FipDecisions::compute(&system, &eba_pair, "F^{Λ,2}");
        let d_sba = FipDecisions::compute(&system, &sba_pair, "SBA");
        let se = fip_stats(&system, &d_eba);
        let ss = fip_stats(&system, &d_sba);
        let dom = dominates(&system, &d_eba, &d_sba);
        let sba_report = verify_properties(&system, &d_sba);
        table.row([
            format!("n={n} t={t}"),
            fmt_f64(se.mean_time()),
            fmt_f64(ss.mean_time()),
            se.max_time().map_or_else(|| "-".into(), |t| t.to_string()),
            ss.max_time().map_or_else(|| "-".into(), |t| t.to_string()),
            dom.rounds_saved.to_string(),
            sba_report.is_sba().to_string(),
        ]);
    }
    vec![table]
}

/// EXP7b — the same comparison at message level and scale: optimal EBA
/// (`P0opt`) vs the verified-optimum waste-based SBA (`SbaWaste`).
pub fn exp7b() -> Table {
    let mut table = Table::new(
        "EXP7b: P0opt (EBA) vs SbaWaste (optimum SBA) — crash, sampled",
        &[
            "n", "t", "runs", "EBA mean", "SBA mean", "EBA max", "SBA max",
        ],
    );
    for (n, t, runs, seed) in [
        (8usize, 2usize, 800usize, 31u64),
        (16, 4, 400, 32),
        (32, 8, 200, 33),
    ] {
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = PatternSampler::new(scenario);
        let mut eba_stats = DecisionStats::new();
        let mut sba_stats = DecisionStats::new();
        for _ in 0..runs {
            let config = sample::random_config_biased(n, 1.0 / n as f64, &mut rng);
            let pattern = sampler.sample(&mut rng);
            let eba = execute_unchecked(&P0Opt::new(t), &config, &pattern, scenario.horizon());
            let sba =
                execute_unchecked(&SbaWaste::new(n, t), &config, &pattern, scenario.horizon());
            eba_stats.record_trace(&eba);
            sba_stats.record_trace(&sba);
        }
        table.row([
            n.to_string(),
            t.to_string(),
            runs.to_string(),
            fmt_f64(eba_stats.mean_time()),
            fmt_f64(sba_stats.mean_time()),
            eba_stats
                .max_time()
                .map_or_else(|| "-".into(), |t| t.to_string()),
            sba_stats
                .max_time()
                .map_or_else(|| "-".into(), |t| t.to_string()),
        ]);
    }
    table
}

/// EXP8 — Proposition 3.1 and Lemma 3.4: axiom validity over a formula
/// battery, plus the strictness of `C□ ⇒ C`.
pub fn exp8() -> Vec<Table> {
    let mut table = Table::new(
        "EXP8: knowledge-operator axioms (Prop 3.1 / Lemma 3.4)",
        &["system", "operators", "checks run", "violations"],
    );
    let formulas = [
        Formula::exists(Value::Zero),
        Formula::exists(Value::One),
        Formula::exists(Value::Zero).not(),
        Formula::exists(Value::Zero).known_by(ProcessorId::new(0)),
        Formula::Nonfaulty(ProcessorId::new(1)),
        Formula::exists(Value::One).believed_by(ProcessorId::new(2), NonRigidSet::Nonfaulty),
    ];
    let procs: Vec<ProcessorId> = ProcessorId::all(3).collect();
    let sets = [NonRigidSet::Nonfaulty, NonRigidSet::Everyone];
    for (mode, horizon) in [(FailureMode::Crash, 3), (FailureMode::Omission, 2)] {
        let system = exhaustive(3, 1, mode, horizon);
        let mut eval = Evaluator::new(&system);
        let violations = axioms::all_violations(&mut eval, &procs, &sets, &formulas);
        let checks = formulas.len() * formulas.len() * (procs.len() * 5 + sets.len() * 8);
        table.row([
            system.scenario().to_string(),
            "K (S5), C□ (K45+fixpoint+induction)".into(),
            format!("~{checks}"),
            violations.len().to_string(),
        ]);
    }

    let mut strict = Table::new(
        "EXP8b: C□ is strictly stronger than C (Section 3.3)",
        &[
            "system",
            "C□φ ⇒ Cφ valid",
            "Cφ ⇒ C□φ valid (expected false)",
        ],
    );
    for (mode, horizon) in [(FailureMode::Crash, 3), (FailureMode::Omission, 2)] {
        let system = exhaustive(3, 1, mode, horizon);
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let cc = phi.clone().continual_common(NonRigidSet::Nonfaulty);
        let c = phi.common(NonRigidSet::Nonfaulty);
        strict.row([
            system.scenario().to_string(),
            eval.valid(&cc.clone().implies(c.clone())).to_string(),
            eval.valid(&c.implies(cc)).to_string(),
        ]);
    }
    vec![table, strict]
}

/// EXP9 — message-level protocol scaling: decision times and throughput
/// proxies across `n`.
pub fn exp9() -> Vec<Table> {
    let mut table = Table::new(
        "EXP9: message-level scaling (crash + omission, sampled)",
        &[
            "protocol",
            "n",
            "t",
            "runs",
            "mean",
            "max",
            "msgs/run",
            "units/run",
            "safe",
        ],
    );
    let sizes: &[usize] = if full_mode() {
        &[8, 16, 32, 64, 128]
    } else {
        &[8, 16, 32, 64]
    };
    for &n in sizes {
        let t = n / 4;
        let runs = 200usize;
        let crash = Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let omission =
            Scenario::new(n, t, FailureMode::Omission, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(n as u64);

        macro_rules! campaign {
            ($protocol:expr, $scenario:expr) => {{
                let sampler = PatternSampler::new($scenario);
                let mut stats = DecisionStats::new();
                let mut msgs = 0u64;
                let mut units = 0u64;
                let mut safe = true;
                for _ in 0..runs {
                    let config = sample::random_config_biased(n, 1.0 / n as f64, &mut rng);
                    let pattern = sampler.sample(&mut rng);
                    let trace =
                        execute_unchecked(&$protocol, &config, &pattern, $scenario.horizon());
                    safe &= trace.satisfies_weak_agreement() && trace.satisfies_weak_validity();
                    stats.record_trace(&trace);
                    msgs += trace.messages_delivered();
                    units += trace.message_units();
                }
                table.row([
                    $protocol.name().to_owned(),
                    n.to_string(),
                    t.to_string(),
                    runs.to_string(),
                    fmt_f64(stats.mean_time()),
                    stats
                        .max_time()
                        .map_or_else(|| "-".into(), |t| t.to_string()),
                    (msgs / runs as u64).to_string(),
                    (units / runs as u64).to_string(),
                    safe.to_string(),
                ]);
            }};
        }
        campaign!(Relay::p0(t), crash);
        campaign!(P0Opt::new(t), crash);
        campaign!(EarlyStoppingCrash::new(t), crash);
        campaign!(FloodMin::new(t), crash);
        campaign!(SbaWaste::new(n, t), crash);
        campaign!(ChainOmission::new(n), omission);
    }
    vec![table]
}

/// EXP10 — knowledge-engine cost and the horizon ablation.
pub fn exp10() -> Vec<Table> {
    let mut cost = Table::new(
        "EXP10a: generated-system and engine sizes",
        &[
            "scenario",
            "runs",
            "points",
            "distinct views",
            "F^{Λ,2} build (ms)",
        ],
    );
    let mut scenarios = vec![
        (3usize, 1usize, FailureMode::Crash, 3u16),
        (4, 1, FailureMode::Crash, 3),
        (4, 2, FailureMode::Crash, 4),
        (3, 1, FailureMode::Omission, 2),
        (4, 1, FailureMode::Omission, 3),
    ];
    if full_mode() {
        scenarios.push((4, 2, FailureMode::Omission, 2));
    }
    for (n, t, mode, horizon) in scenarios {
        let system = exhaustive(n, t, mode, horizon);
        let start = std::time::Instant::now();
        let mut ctor = Constructor::new(&system);
        let pair = f_lambda_2(&mut ctor);
        let _ = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
        let elapsed = start.elapsed().as_millis();
        cost.row([
            system.scenario().to_string(),
            system.num_runs().to_string(),
            system.num_points().to_string(),
            system.table().len().to_string(),
            elapsed.to_string(),
        ]);
    }

    let mut ablation = Table::new(
        "EXP10b: horizon ablation — F^{Λ,2} decisions on shared runs",
        &[
            "scenario",
            "horizons",
            "shared decisions compared",
            "identical",
        ],
    );
    for (small, large) in [(3u16, 4u16), (4, 5)] {
        let sys_a = exhaustive(3, 1, FailureMode::Crash, small);
        let sys_b = exhaustive(3, 1, FailureMode::Crash, large);
        let mut ctor_a = Constructor::new(&sys_a);
        let mut ctor_b = Constructor::new(&sys_b);
        let d_a = FipDecisions::compute(&sys_a, &f_lambda_2(&mut ctor_a), "F^{Λ,2}");
        let d_b = FipDecisions::compute(&sys_b, &f_lambda_2(&mut ctor_b), "F^{Λ,2}");
        let mut compared = 0u64;
        let mut identical = true;
        for run_a in sys_a.run_ids() {
            let record = sys_a.run(run_a);
            let Some(run_b) = sys_b.find_run(&record.config, &record.pattern) else {
                continue;
            };
            for p in record.nonfaulty {
                compared += 1;
                identical &= d_a.decision(run_a, p) == d_b.decision(run_b, p);
            }
        }
        ablation.row([
            "n=3 t=1 crash".into(),
            format!("T={small} vs T={large}"),
            compared.to_string(),
            identical.to_string(),
        ]);
    }
    vec![cost, ablation]
}

/// EXP6c — optimal ≠ optimum at the knowledge level: the zero-first and
/// one-first Theorem 5.2 constructions are both optimal yet incomparable.
pub fn exp6c_two_optima() -> Table {
    let mut table = Table::new(
        "EXP6c: two incomparable optima (zero-first vs one-first F²)",
        &[
            "scenario",
            "0-first optimal",
            "1-first optimal",
            "0-first earlier",
            "1-first earlier",
            "either dominates",
        ],
    );
    for (mode, horizon) in [(FailureMode::Crash, 3u16), (FailureMode::Omission, 2)] {
        let system = exhaustive(3, 1, mode, horizon);
        let mut ctor = Constructor::new(&system);
        let seed = DecisionPair::empty(3);
        let zero_first = ctor.optimize(&seed);
        let one_first = ctor.optimize_one_first(&seed);
        let d_zero = FipDecisions::compute(&system, &zero_first, "F² (0-first)");
        let d_one = FipDecisions::compute(&system, &one_first, "F² (1-first)");
        let fwd = dominates(&system, &d_zero, &d_one);
        let bwd = dominates(&system, &d_one, &d_zero);
        table.row([
            system.scenario().to_string(),
            check_optimality(&mut ctor, &zero_first)
                .is_optimal()
                .to_string(),
            check_optimality(&mut ctor, &one_first)
                .is_optimal()
                .to_string(),
            fwd.earlier.to_string(),
            bwd.earlier.to_string(),
            (fwd.dominates || bwd.dominates).to_string(),
        ]);
    }
    table
}

/// EXP11 — the general-omission extension (\[PT86\], excluded by the paper
/// but flagged in Section 7): the knowledge level carries over, the
/// message-level accusation protocol does not.
pub fn exp11() -> Vec<Table> {
    let mut table = Table::new(
        "EXP11: general-omission extension (beyond the paper)",
        &["check", "scenario", "verdict"],
    );
    let system = exhaustive(3, 1, FailureMode::GeneralOmission, 2);
    let mut ctor = Constructor::new(&system);

    let f2 = ctor.optimize(&DecisionPair::empty(3));
    let d2 = FipDecisions::compute(&system, &f2, "F^{Λ,2}");
    table.row([
        "Thm 5.2: F² nontrivial agreement".into(),
        system.scenario().to_string(),
        verify_properties(&system, &d2)
            .is_nontrivial_agreement()
            .to_string(),
    ]);
    table.row([
        "Thm 5.3: F² optimal".into(),
        system.scenario().to_string(),
        check_optimality(&mut ctor, &f2).is_optimal().to_string(),
    ]);

    let chain = zero_chain_pair(&mut ctor);
    let dc = FipDecisions::compute(&system, &chain, "FIP(Z⁰,O⁰)");
    let chain_report = verify_properties(&system, &dc);
    let f_bound = system.run_ids().all(|run| {
        let f = system.run(run).pattern.num_faulty() as u16;
        system
            .nonfaulty(run)
            .iter()
            .all(|p| dc.decision_time(run, p).is_some_and(|t| t.ticks() <= f + 1))
    });
    table.row([
        "Prop 6.4: FIP(Z⁰,O⁰) is EBA, ≤ f+1".into(),
        system.scenario().to_string(),
        (chain_report.is_eba() && f_bound).to_string(),
    ]);

    // Message level: sampled ChainOmission campaigns now show violations.
    for (n, t, runs, seed) in [(4usize, 2usize, 2000usize, 21u64), (6, 2, 2000, 22)] {
        let scenario = Scenario::new(n, t, FailureMode::GeneralOmission, t as u16 + 2)
            .expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = PatternSampler::new(scenario).omission_density(0.4);
        let mut violations = 0u64;
        for _ in 0..runs {
            let config = sample::random_config_biased(n, 1.5 / n as f64, &mut rng);
            let pattern = sampler.sample(&mut rng);
            let trace = execute_unchecked(
                &ChainOmission::new(n),
                &config,
                &pattern,
                scenario.horizon(),
            );
            violations +=
                u64::from(!trace.satisfies_weak_agreement() || !trace.satisfies_weak_validity());
        }
        table.row([
            format!("ChainOmission safety violations / {runs} runs"),
            scenario.to_string(),
            violations.to_string(),
        ]);
    }
    vec![table]
}

/// EXP12 — the multi-valued extension (the Section 2.1 note): agreement
/// properties over larger domains, and the generalized no-optimum
/// argument.
pub fn exp12() -> Vec<Table> {
    use eba_protocols::multi::{
        execute_multi, MultiConfig, MultiEarlyStop, MultiFloodMin, MultiRelay,
    };
    let mut table = Table::new(
        "EXP12: multi-valued agreement (Section 2.1 extension) — crash, exhaustive",
        &[
            "protocol",
            "domain",
            "n",
            "t",
            "runs",
            "agreement",
            "strong validity",
            "decision",
        ],
    );
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario");
    for domain in [2u8, 3, 4] {
        let configs: Vec<MultiConfig> = MultiConfig::enumerate_all(domain, 3).collect();
        macro_rules! campaign {
            ($protocol:expr, $name:expr) => {{
                let mut runs = 0u64;
                let (mut agree, mut strong, mut decide) = (true, true, true);
                for pattern in eba_model::enumerate::patterns(&scenario) {
                    for config in &configs {
                        let trace = execute_multi(&$protocol, config, &pattern, scenario.horizon());
                        runs += 1;
                        agree &= trace.satisfies_weak_agreement();
                        strong &= trace.satisfies_strong_validity();
                        decide &= trace.satisfies_decision();
                    }
                }
                table.row([
                    $name.to_owned(),
                    domain.to_string(),
                    "3".into(),
                    "1".into(),
                    runs.to_string(),
                    agree.to_string(),
                    strong.to_string(),
                    decide.to_string(),
                ]);
            }};
        }
        campaign!(MultiFloodMin::new(1), "MultiFloodMin");
        campaign!(MultiEarlyStop::new(1), "MultiEarlyStop");
        campaign!(MultiRelay::new(1, (0..domain).collect()), "MultiRelay");
    }

    let mut no_optimum = Table::new(
        "EXP12b: no-optimum generalizes (MultiRelay priorities, domain 3)",
        &[
            "priority A",
            "priority B",
            "A earlier",
            "B earlier",
            "either dominates",
        ],
    );
    let configs: Vec<MultiConfig> = MultiConfig::enumerate_all(3, 3).collect();
    let orders: [Vec<u8>; 3] = [vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]];
    for a_idx in 0..orders.len() {
        for b_idx in (a_idx + 1)..orders.len() {
            let a = MultiRelay::new(1, orders[a_idx].clone());
            let b = MultiRelay::new(1, orders[b_idx].clone());
            let (mut a_earlier, mut b_earlier) = (0u64, 0u64);
            for pattern in eba_model::enumerate::patterns(&scenario) {
                for config in &configs {
                    let ta = execute_multi(&a, config, &pattern, scenario.horizon());
                    let tb = execute_multi(&b, config, &pattern, scenario.horizon());
                    for p in pattern.nonfaulty_set() {
                        let (_, time_a) = ta
                            .decision(p)
                            .expect("relay decides for every nonfaulty processor");
                        let (_, time_b) = tb
                            .decision(p)
                            .expect("relay decides for every nonfaulty processor");
                        a_earlier += u64::from(time_a < time_b);
                        b_earlier += u64::from(time_b < time_a);
                    }
                }
            }
            no_optimum.row([
                format!("{:?}", orders[a_idx]),
                format!("{:?}", orders[b_idx]),
                a_earlier.to_string(),
                b_earlier.to_string(),
                (a_earlier == 0 || b_earlier == 0).to_string(),
            ]);
        }
    }
    vec![table, no_optimum]
}

/// EXP13 — the limited-information exchange (DESIGN.md §4g): `digest:0`
/// is differentially lossless on the small spaces the suite validates
/// (identical state partition, decisions, and optimality verdicts as the
/// full-information oracle), while past its contact window the digest
/// state space grows linearly in the horizon where full information
/// grows ~4× per round — so under a shared view budget the digest
/// completes exhaustive builds the full-information engine cannot.
pub fn exp13() -> Vec<Table> {
    use eba_model::{ExchangeKind, RunBudget, Time};
    use eba_sim::{GeneratedSystem, SystemBuilder};

    let digest_of = |scenario: &Scenario| {
        scenario
            .with_exchange(ExchangeKind::Digest { bits: 0 })
            .expect("digest:0 is always a valid exchange")
    };

    let mut oracle = Table::new(
        "EXP13a: digest:0 vs the full-information oracle (lossless spaces)",
        &[
            "scenario",
            "runs",
            "full states",
            "digest states",
            "partition identical",
            "decisions identical",
            "both optimal",
        ],
    );
    for (mode, horizon) in [
        (FailureMode::Crash, 3u16),
        (FailureMode::Omission, 2),
        (FailureMode::GeneralOmission, 2),
    ] {
        let scenario = Scenario::new(3, 1, mode, horizon).expect("valid scenario");
        let full = GeneratedSystem::exhaustive(&scenario);
        let digest = GeneratedSystem::exhaustive(&digest_of(&scenario));
        // State partitions coincide when the full→digest slot map is a
        // bijection over every (run, time, processor) slot.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        let mut bijective = full.num_runs() == digest.num_runs();
        for run in full.run_ids() {
            for time in 0..=full.horizon().index() {
                for p in ProcessorId::all(3) {
                    let f = full.view(run, p, Time::new(time as u16));
                    let d = digest.view(run, p, Time::new(time as u16));
                    bijective &= *fwd.entry(f).or_insert(d) == d;
                    bijective &= *bwd.entry(d).or_insert(f) == f;
                }
            }
        }
        let pair_full = Constructor::new(&full).optimize(&DecisionPair::empty(3));
        let pair_digest = Constructor::new(&digest).optimize(&DecisionPair::empty(3));
        let d_full = FipDecisions::compute(&full, &pair_full, "full");
        let d_digest = FipDecisions::compute(&digest, &pair_digest, "digest:0");
        let decisions_match = full
            .run_ids()
            .all(|r| ProcessorId::all(3).all(|p| d_full.decision(r, p) == d_digest.decision(r, p)));
        let both_optimal = check_optimality(&mut Constructor::new(&full), &pair_full).is_optimal()
            && check_optimality(&mut Constructor::new(&digest), &pair_digest).is_optimal();
        oracle.row([
            scenario.to_string(),
            full.num_runs().to_string(),
            full.table().len().to_string(),
            digest.table().len().to_string(),
            bijective.to_string(),
            decisions_match.to_string(),
            both_optimal.to_string(),
        ]);
    }

    let mut growth = Table::new(
        "EXP13b: state growth past the contact window (omission n=3 t=1)",
        &["T", "runs", "full states", "digest states", "full/digest"],
    );
    let top = if full_mode() { 7 } else { 6 };
    for horizon in 4..=top {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, horizon).expect("valid scenario");
        let full = GeneratedSystem::exhaustive(&scenario);
        let digest = GeneratedSystem::exhaustive(&digest_of(&scenario));
        growth.row([
            horizon.to_string(),
            full.num_runs().to_string(),
            full.table().len().to_string(),
            digest.table().len().to_string(),
            fmt_f64(Some(
                full.table().len() as f64 / digest.table().len() as f64,
            )),
        ]);
    }

    let mut wall = Table::new(
        "EXP13c: shared view budget, omission n=3 t=1 T=6 (max 100k states)",
        &["exchange", "outcome", "runs built", "states"],
    );
    let tall = Scenario::new(3, 1, FailureMode::Omission, 6).expect("valid scenario");
    for scenario in [tall, digest_of(&tall)] {
        let outcome = SystemBuilder::new(&scenario)
            .budget(RunBudget::unlimited().with_max_views(100_000))
            .build_governed()
            .unwrap_or_else(|fault| panic!("{fault}"));
        wall.row([
            scenario.exchange().to_string(),
            outcome
                .budget_hit()
                .map_or_else(|| "complete".into(), |hit| format!("partial: {hit}")),
            outcome.system().num_runs().to_string(),
            outcome.system().table().len().to_string(),
        ]);
    }
    vec![oracle, growth, wall]
}

/// EXP-extra — Proposition 6.6 at message level is hard; as a stand-in,
/// `F*` vs `FIP(Z⁰,O⁰)` improvement counts per scenario.
pub fn exp6b_f_star_gain() -> Table {
    let mut table = Table::new(
        "EXP6b: F* improvement over FIP(Z⁰,O⁰) (omission)",
        &["scenario", "earlier", "equal", "later", "F* optimal"],
    );
    for (n, t, horizon) in [(3usize, 1usize, 2u16), (4, 1, 3)] {
        let system = exhaustive(n, t, FailureMode::Omission, horizon);
        let mut ctor = Constructor::new(&system);
        let base = zero_chain_pair(&mut ctor);
        let star = f_star(&mut ctor);
        let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
        let d_star = FipDecisions::compute(&system, &star, "F*");
        let dom = dominates(&system, &d_star, &d_base);
        table.row([
            system.scenario().to_string(),
            dom.earlier.to_string(),
            dom.equal.to_string(),
            dom.later.to_string(),
            check_optimality(&mut ctor, &star).is_optimal().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp1_shows_no_domination_either_way() {
        let tables = exp1();
        for row_idx in 0..tables[0].len() {
            // Column 4 is "either dominates?": must be false everywhere.
            assert!(tables[0].render().contains("false"));
            let _ = row_idx;
        }
    }

    #[test]
    fn exp7_saves_rounds() {
        let tables = exp7();
        let rendered = tables[0].render();
        // SBA is simultaneous in every scenario.
        assert!(!rendered.contains("| false |"), "{rendered}");
    }

    #[test]
    fn exp8_reports_zero_violations() {
        let tables = exp8();
        let rendered = tables[0].render();
        for line in rendered.lines().skip(3) {
            if line.starts_with('|') {
                let last_cell = line
                    .split('|')
                    .rfind(|c| !c.trim().is_empty())
                    .unwrap_or("")
                    .trim();
                assert_eq!(last_cell, "0", "{line}");
            }
        }
        // C ⇒ C□ must be invalid (strictness): every data row reads
        // (true, false) in its last two cells.
        let strict = tables[1].render();
        for line in strict.lines().skip(3).filter(|l| l.starts_with('|')) {
            let cells: Vec<&str> = line
                .split('|')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .collect();
            assert_eq!(&cells[cells.len() - 2..], &["true", "false"], "{line}");
        }
    }

    #[test]
    fn exp13_digest_matches_oracle_and_beats_the_wall() {
        let tables = exp13();
        // EXP13a: bijectivity, decision equality, and optimality must
        // all hold on every validated space.
        assert!(
            !tables[0].render().contains("false"),
            "{}",
            tables[0].render()
        );
        // EXP13c: the same budget stops the full-information build and
        // lets the digest complete.
        let wall = tables[2].render();
        assert!(wall.contains("partial"), "{wall}");
        assert!(wall.contains("complete"), "{wall}");
    }

    #[test]
    fn exp10_horizon_ablation_is_stable() {
        let tables = exp10();
        let rendered = tables[1].render();
        assert!(!rendered.contains("false"), "{rendered}");
    }
}
