//! Binary agreement values.

use std::fmt;

/// An agreement value, `V = {0, 1}` in the paper.
///
/// The paper focuses on binary agreement; extending to larger value sets is
/// straightforward (Section 2.1) but binary suffices to reproduce every
/// result, so we keep the set small and `Copy`.
///
/// # Example
///
/// ```
/// use eba_model::Value;
///
/// assert_eq!(Value::Zero.other(), Value::One);
/// assert_eq!(Value::from_bit(true), Value::One);
/// assert_eq!(Value::Zero.to_string(), "0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// The value 0.
    Zero,
    /// The value 1.
    One,
}

impl Value {
    /// Both values, in numeric order.
    pub const ALL: [Value; 2] = [Value::Zero, Value::One];

    /// Returns the other value (`1 − v`).
    #[must_use]
    pub fn other(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
        }
    }

    /// Converts a bit to a value: `false ↦ 0`, `true ↦ 1`.
    #[must_use]
    pub fn from_bit(bit: bool) -> Value {
        if bit {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// Returns the value as a bit: `0 ↦ false`, `1 ↦ true`.
    #[must_use]
    pub fn as_bit(self) -> bool {
        matches!(self, Value::One)
    }

    /// Returns the value as the integer 0 or 1.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self.as_bit() as u8
    }
}

impl Default for Value {
    /// Defaults to `Zero`, matching the numeric default.
    fn default() -> Self {
        Value::Zero
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

impl From<bool> for Value {
    fn from(bit: bool) -> Self {
        Value::from_bit(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for v in Value::ALL {
            assert_eq!(v.other().other(), v);
            assert_ne!(v.other(), v);
        }
    }

    #[test]
    fn bit_round_trip() {
        for v in Value::ALL {
            assert_eq!(Value::from_bit(v.as_bit()), v);
        }
        assert_eq!(Value::from(false), Value::Zero);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Value::Zero.to_string(), "0");
        assert_eq!(Value::One.to_string(), "1");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Value::Zero < Value::One);
        assert_eq!(Value::Zero.as_u8(), 0);
        assert_eq!(Value::One.as_u8(), 1);
    }
}
