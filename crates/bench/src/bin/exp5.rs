//! Experiment EXP5; see `eba_bench::experiments::exp5`.
fn main() {
    for table in eba_bench::experiments::exp5() {
        table.print();
    }
}
