//! Crash-mode agreement at scale: `P0` vs `P0opt` vs baselines.
//!
//! The scenario the paper's introduction motivates: a cluster must agree
//! whether to commit (1) or abort (0) while nodes may crash mid-round.
//! We run the message-level protocols over thousands of seeded random
//! runs at n = 32 and print decision-time distributions, then verify the
//! domination relationship run-by-run.
//!
//! ```text
//! cargo run --release --example optimal_crash_agreement
//! ```

use eba::prelude::*;
use eba_model::sample::{self, PatternSampler};
use eba_protocols::{EarlyStoppingCrash, FloodMin, P0Opt, Relay};
use eba_sim::stats::DecisionStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 32;
const T: usize = 8;
const RUNS: usize = 2_000;
const SEED: u64 = 0xEBA;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(N, T, FailureMode::Crash, T as u16 + 2)?;
    println!("scenario: {scenario}, {RUNS} sampled runs, seed {SEED:#x}\n");

    // One shared set of runs so the protocols face identical adversaries.
    let mut rng = StdRng::seed_from_u64(SEED);
    let sampler = PatternSampler::new(scenario);
    // Sparse zeros (P(zero) = 1/N per node) so both decision values and
    // the decide-1 rules get exercised; uniform configurations at n = 32
    // would contain a 0 almost surely.
    let runs: Vec<(InitialConfig, FailurePattern)> = (0..RUNS)
        .map(|_| {
            (
                sample::random_config_biased(N, 1.0 / N as f64, &mut rng),
                sampler.sample(&mut rng),
            )
        })
        .collect();

    let p0 = Relay::p0(T);
    let p0opt = P0Opt::new(T);
    let early = EarlyStoppingCrash::new(T);
    let flood = FloodMin::new(T);

    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "protocol", "mean", "max", "dec-0", "dec-1", "msgs/run"
    );
    let mut tables: Vec<(String, Vec<Vec<Option<Time>>>)> = Vec::new();
    macro_rules! campaign {
        ($protocol:expr) => {{
            let mut stats = DecisionStats::new();
            let mut messages = 0u64;
            let mut table = Vec::with_capacity(runs.len());
            for (config, pattern) in &runs {
                let trace = execute(&$protocol, config, pattern, scenario.horizon()).unwrap();
                assert!(trace.satisfies_weak_agreement());
                assert!(trace.satisfies_weak_validity());
                stats.record_trace(&trace);
                messages += trace.messages_delivered();
                table.push(
                    ProcessorId::all(N)
                        .map(|p| {
                            pattern
                                .nonfaulty_set()
                                .contains(p)
                                .then(|| trace.decision_time(p))
                                .flatten()
                        })
                        .collect::<Vec<_>>(),
                );
            }
            println!(
                "{:<10} {:>8.3} {:>8} {:>9} {:>9} {:>10}",
                $protocol.name(),
                stats.mean_time().unwrap_or(f64::NAN),
                stats
                    .max_time()
                    .map_or_else(|| "-".into(), |t| t.to_string()),
                stats.decided_on(Value::Zero),
                stats.decided_on(Value::One),
                messages / RUNS as u64,
            );
            tables.push(($protocol.name().to_owned(), table));
        }};
    }
    campaign!(p0);
    campaign!(p0opt);
    campaign!(early);
    campaign!(flood);

    // Run-by-run domination: P0opt never later than anyone, strictly
    // earlier somewhere.
    let opt_table = tables[1].1.clone();
    for (name, other) in tables.iter().filter(|(n, _)| n != "P0opt") {
        let mut earlier = 0u64;
        let mut later = 0u64;
        for (ra, rb) in opt_table.iter().zip(other) {
            for (ta, tb) in ra.iter().zip(rb) {
                if let (Some(ta), Some(tb)) = (ta, tb) {
                    earlier += u64::from(ta < tb);
                    later += u64::from(ta > tb);
                }
            }
        }
        println!("P0opt vs {name:<10} strictly-earlier={earlier:>7}  later={later}");
        assert_eq!(later, 0, "P0opt must dominate {name}");
    }

    println!("\nall campaigns safe (weak agreement + validity) ✓, P0opt dominates ✓");
    Ok(())
}
