//! Experiment EXP3; see `eba_bench::experiments::exp3`.
fn main() {
    for table in eba_bench::experiments::exp3() {
        table.print();
    }
}
