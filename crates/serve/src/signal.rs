//! Cooperative SIGINT handling without external crates.
//!
//! The whole workspace forbids unsafe code; this module is the single,
//! audited exception (`#[allow(unsafe_code)]` below, against the
//! workspace-level `deny`). It registers a minimal `signal(2)` handler
//! that sets one static [`AtomicBool`] — the only async-signal-safe
//! action a handler can take — and everything downstream is ordinary
//! cooperative cancellation: `eba-check` attaches the flag to its
//! [`eba_model::RunBudget`] (Ctrl-C then yields the same deterministic
//! PARTIAL banner as `--deadline`), and `eba-serve` bridges it to the
//! server's drain flag.
//!
//! On non-Unix targets [`install_sigint`] returns a flag nothing ever
//! sets; Ctrl-C falls back to the platform default.

use std::sync::atomic::AtomicBool;

/// The process-wide SIGINT flag; set by the handler, never cleared.
static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

/// Installs the SIGINT handler (idempotent) and returns the flag it
/// sets. Callers poll the flag or attach it to a
/// [`eba_model::RunBudget`] via `with_interrupt`.
#[must_use]
pub fn install_sigint() -> &'static AtomicBool {
    imp::install();
    &SIGINT_FLAG
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SIGINT_FLAG;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    /// POSIX SIGINT number (identical on every Unix this builds for).
    const SIGINT: c_int = 2;

    extern "C" {
        /// `man 2 signal`; the return value (the previous handler) is a
        /// function pointer we never inspect, declared as `usize` to
        /// avoid pretending we can call it.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// The handler: one relaxed atomic store, the canonical
    /// async-signal-safe operation.
    extern "C" fn on_sigint(_signum: c_int) {
        SIGINT_FLAG.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX libc symbol with the declared
        // prototype; `on_sigint` is an `extern "C" fn(c_int)` that only
        // performs an atomic store, which is async-signal-safe. The
        // returned previous handler is discarded, never invoked.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(all(test, unix))]
#[allow(unsafe_code)]
mod tests {
    use super::*;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    extern "C" {
        /// `man 3 raise` — used to deliver a real SIGINT to ourselves.
        fn raise(signum: c_int) -> c_int;
    }

    #[test]
    fn sigint_sets_the_flag_instead_of_killing_the_process() {
        let flag = install_sigint();
        assert!(!flag.load(Ordering::Relaxed));
        // SAFETY: `raise` delivers SIGINT to this process; our handler
        // (installed above) turns it into an atomic store, so the test
        // harness survives.
        unsafe {
            raise(2);
        }
        assert!(flag.load(Ordering::Relaxed), "handler must set the flag");
        // Reset for any other test in this process (the flag is
        // process-global by design).
        flag.store(false, Ordering::Relaxed);
    }
}
