//! Round-trip tests for the optional `serde` feature
//! (`cargo test -p eba-model --features serde`).

#![cfg(feature = "serde")]

use eba_model::{
    FailureMode, FailurePattern, FaultyBehavior, InitialConfig, ProcSet, ProcessorId,
    Round, Scenario, Time, Value,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn scalar_types_round_trip() {
    for v in Value::ALL {
        assert_eq!(round_trip(&v), v);
    }
    let p = ProcessorId::new(7);
    assert_eq!(round_trip(&p), p);
    let t = Time::new(5);
    assert_eq!(round_trip(&t), t);
    let r = Round::new(3);
    assert_eq!(round_trip(&r), r);
}

#[test]
fn procset_round_trips() {
    let s: ProcSet = [0usize, 3, 127]
        .into_iter()
        .map(ProcessorId::new)
        .collect();
    assert_eq!(round_trip(&s), s);
    assert_eq!(round_trip(&ProcSet::empty()), ProcSet::empty());
}

#[test]
fn config_round_trips() {
    let c = InitialConfig::from_bits(6, 0b101101);
    assert_eq!(round_trip(&c), c);
}

#[test]
fn failure_patterns_round_trip() {
    let pattern = FailurePattern::failure_free(4)
        .with_behavior(
            ProcessorId::new(0),
            FaultyBehavior::Crash {
                round: Round::new(2),
                receivers: ProcSet::singleton(ProcessorId::new(1)),
            },
        )
        .with_behavior(
            ProcessorId::new(2),
            FaultyBehavior::GeneralOmission {
                send: vec![ProcSet::empty(), ProcSet::singleton(ProcessorId::new(3))],
                receive: vec![ProcSet::singleton(ProcessorId::new(0)), ProcSet::empty()],
            },
        );
    assert_eq!(round_trip(&pattern), pattern);
}

#[test]
fn scenarios_round_trip() {
    for mode in FailureMode::ALL_EXTENDED {
        let scenario = Scenario::new(5, 2, mode, 4).unwrap();
        assert_eq!(round_trip(&scenario), scenario);
    }
}

#[test]
fn pattern_survives_reserialization_and_still_validates() {
    let scenario = Scenario::new(4, 2, FailureMode::Omission, 3).unwrap();
    let pattern = FailurePattern::failure_free(4).with_behavior(
        ProcessorId::new(1),
        FaultyBehavior::Omission {
            omissions: vec![ProcSet::empty(); 3],
        },
    );
    let back = round_trip(&pattern);
    scenario.validate_pattern(&back).unwrap();
}
