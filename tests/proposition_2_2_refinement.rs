//! Proposition 2.2 / Corollary 2.3: the full-information protocol makes
//! the finest state distinctions — for any protocol `P` there is a
//! per-processor function from FIP views to `P`-states that commutes with
//! corresponding points. We verify the function is well defined for each
//! of our message-level protocols: across every pair of corresponding
//! points, equal views imply equal protocol states.

use eba::prelude::*;
use eba_protocols::{ChainOmission, EarlyStoppingCrash, FloodMin, P0Opt, Relay};
use eba_sim::execute_unchecked as execute;
use std::collections::HashMap;
use std::hash::Hash;

fn check_refinement<P>(protocol: &P, scenario: &Scenario)
where
    P: Protocol,
    P::State: Hash,
{
    let system = GeneratedSystem::exhaustive(scenario);
    // f_p : ViewId -> P::State, built incrementally; any collision with a
    // different state falsifies Proposition 2.2 for this protocol.
    let mut maps: Vec<HashMap<eba_sim::ViewId, P::State>> = vec![HashMap::new(); scenario.n()];
    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute(
            protocol,
            &record.config,
            &record.pattern,
            scenario.horizon(),
        );
        for time in Time::upto(scenario.horizon()) {
            for p in ProcessorId::all(scenario.n()) {
                // Crashed processors freeze in both models but the trace
                // keeps their last state; skip them for cleanliness.
                if record.pattern.crashed_by(p, time) {
                    continue;
                }
                let view = system.view(run, p, time);
                let state = trace.state(p, time).clone();
                match maps[p.index()].get(&view) {
                    None => {
                        maps[p.index()].insert(view, state);
                    }
                    Some(prior) => assert_eq!(
                        prior,
                        &state,
                        "{p} at {time}: same FIP view, different {} states \
                         (run {}: {} / {})",
                        protocol.name(),
                        run.index(),
                        record.config,
                        record.pattern,
                    ),
                }
            }
        }
    }
}

#[test]
fn fip_views_refine_relay_states() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    check_refinement(&Relay::p0(1), &scenario);
    check_refinement(&Relay::p1(1), &scenario);
}

#[test]
fn fip_views_refine_p0opt_states() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    check_refinement(&P0Opt::new(1), &scenario);
    check_refinement(&P0Opt::with_halting(1), &scenario);
}

#[test]
fn fip_views_refine_floodmin_and_earlystop_states() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    check_refinement(&FloodMin::new(1), &scenario);
    check_refinement(&EarlyStoppingCrash::new(1), &scenario);
}

#[test]
fn fip_views_refine_chain_omission_states() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    check_refinement(&ChainOmission::new(3), &scenario);
}
