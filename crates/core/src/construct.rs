//! The knowledge-level optimization construction (Proposition 5.1 and
//! Theorem 5.2).
//!
//! Starting from any full-information nontrivial agreement protocol
//! `F = FIP(Z, O)`, one *optimization step* builds a dominating protocol:
//!
//! * [`Constructor::step_zero`] (the `(Z′, O′)` of Proposition 5.1 —
//!   optimize the decision on 0 given the rule for 1):
//!   `Z′_i = B^N_i(∃0 ∧ C□_{N∧O} ∃0)`,
//!   `O′_i = B^N_i(∃1 ∧ ¬C□_{N∧O} ∃0)`;
//! * [`Constructor::step_one`] (the `(Z″, O″)`):
//!   `Z″_i = B^N_i(∃0 ∧ ¬C□_{N∧Z} ∃1)`,
//!   `O″_i = B^N_i(∃1 ∧ C□_{N∧Z} ∃1)`.
//!
//! Theorem 5.2 proves two steps suffice: [`Constructor::optimize`]
//! computes `F² = step_one(step_zero(F))`, an **optimal** nontrivial
//! agreement protocol dominating `F` (an optimal EBA protocol when `F` is
//! an EBA protocol). The test suites verify that a third step is a fixed
//! point.
//!
//! The constructor's formulas are evaluated through the compiled-plan
//! engine of `eba_kripke::plan` (the evaluator default); pass-through
//! access via [`Constructor::evaluator`] +
//! [`Evaluator::set_plan_mode`] selects the recursive reference path,
//! which produces bit-identical decision sets.

use crate::{DecisionPair, FipDecisions};
use eba_kripke::{BatchBuilder, Evaluator, Formula, KnowledgeCache, NonRigidSet, StateSets};
use eba_model::{ProcessorId, Value};
use eba_sim::GeneratedSystem;

/// Builds optimized decision pairs over a generated system; wraps the
/// epistemic [`Evaluator`] and implements the constructions of Section 5.
///
/// # Example
///
/// Optimizing the never-deciding protocol `F^Λ` yields the paper's
/// `F^{Λ,2}` (Section 6.1):
///
/// ```
/// use eba_core::{Constructor, DecisionPair};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let mut ctor = Constructor::new(&system);
/// let f_lambda_2 = ctor.optimize(&DecisionPair::empty(3));
/// assert!(!f_lambda_2.is_empty());
/// # Ok(())
/// # }
/// ```
pub struct Constructor<'a> {
    eval: Evaluator<'a>,
}

impl<'a> Constructor<'a> {
    /// Creates a constructor over `system`.
    #[must_use]
    pub fn new(system: &'a GeneratedSystem) -> Self {
        Constructor {
            eval: Evaluator::new(system),
        }
    }

    /// Creates a constructor whose evaluator publishes reachability
    /// structures to (and reads them from) the given shared
    /// [`KnowledgeCache`]. Constructors and ad-hoc evaluators over the
    /// same system can then reuse each other's `C_S`/`C□_S` work — the
    /// optimization steps re-derive the same `N ∧ O`/`N ∧ Z` families
    /// often enough that this removes the dominant repeated cost.
    #[must_use]
    pub fn with_cache(system: &'a GeneratedSystem, cache: KnowledgeCache) -> Self {
        Constructor {
            eval: Evaluator::with_cache(system, cache),
        }
    }

    /// The underlying system.
    #[must_use]
    pub fn system(&self) -> &'a GeneratedSystem {
        self.eval.system()
    }

    /// The underlying evaluator (for ad-hoc formula checks over the same
    /// caches).
    pub fn evaluator(&mut self) -> &mut Evaluator<'a> {
        &mut self.eval
    }

    /// Extracts, for every processor, the views at which `make(i)` holds;
    /// the workhorse for turning `B^N_i(…)` formulas into decision sets.
    pub fn views_satisfying<F>(&mut self, make: F) -> StateSets
    where
        F: Fn(ProcessorId) -> Formula,
    {
        let n = self.system().n();
        let mut sets = StateSets::empty(n);
        for i in ProcessorId::all(n) {
            let formula = make(i);
            self.eval.views_where_into(i, &formula, &mut sets);
        }
        sets
    }

    /// One optimization step in the *zero-first* direction
    /// (Proposition 5.1's `(Z′, O′)`): given `F = FIP(Z, O)`, returns the
    /// pair with
    /// `Z′_i = B^N_i(∃0 ∧ C□_{N∧O} ∃0)` and
    /// `O′_i = B^N_i(∃1 ∧ ¬C□_{N∧O} ∃0)`.
    ///
    /// The new pair depends only on `O` (the original decide-1 sets).
    pub fn step_zero(&mut self, pair: &DecisionPair) -> DecisionPair {
        let o_id = self.eval.register_state_sets(pair.one().clone());
        let s = NonRigidSet::NonfaultyAnd(o_id);
        self.prefetch_step_sets(s);
        let c0 = Formula::exists(Value::Zero).continual_common(s);
        let zero = self.views_believed(Formula::exists(Value::Zero).and(c0.clone()));
        let one = self.views_believed(Formula::exists(Value::One).and(c0.not()));
        DecisionPair::new(zero, one)
    }

    /// One optimization step in the *one-first* direction
    /// (Proposition 5.1's `(Z″, O″)`): given `F = FIP(Z, O)`, returns the
    /// pair with
    /// `Z″_i = B^N_i(∃0 ∧ ¬C□_{N∧Z} ∃1)` and
    /// `O″_i = B^N_i(∃1 ∧ C□_{N∧Z} ∃1)`.
    ///
    /// The new pair depends only on `Z` (the original decide-0 sets).
    pub fn step_one(&mut self, pair: &DecisionPair) -> DecisionPair {
        let z_id = self.eval.register_state_sets(pair.zero().clone());
        let s = NonRigidSet::NonfaultyAnd(z_id);
        self.prefetch_step_sets(s);
        let c1 = Formula::exists(Value::One).continual_common(s);
        let zero = self.views_believed(Formula::exists(Value::Zero).and(c1.clone().not()));
        let one = self.views_believed(Formula::exists(Value::One).and(c1));
        DecisionPair::new(zero, one)
    }

    /// Resolves everything an optimization step will ask of the knowledge
    /// engine in one batched sweep: the `C□_S` closure needs `S`'s
    /// reachability components, and every `B^N_i` extraction needs `N`'s
    /// scope columns. Skipped in recursive (oracle) mode, which stays on
    /// the per-set path.
    fn prefetch_step_sets(&mut self, s: NonRigidSet) {
        if !(self.eval.plan_mode() && self.eval.batch_mode()) {
            return;
        }
        let mut batch = BatchBuilder::new();
        batch.request_reachability(s);
        batch.request_scopes(NonRigidSet::Nonfaulty);
        batch.run(&mut self.eval);
    }

    /// The decision sets `{ v : B^N_i ψ throughout v }` for every
    /// processor. In batched plan mode this is the fused all-processor
    /// extraction ([`Evaluator::views_believing`]: `ψ` evaluated once,
    /// one bucket sweep per processor); in oracle modes it evaluates the
    /// explicit `B^N_i ψ` formulas per processor, preserving the per-set
    /// reference path the differential tests compare against.
    fn views_believed(&mut self, psi: Formula) -> StateSets {
        if self.eval.plan_mode() && self.eval.batch_mode() {
            let mut sets = StateSets::empty(self.system().n());
            self.eval
                .views_believing(NonRigidSet::Nonfaulty, &psi, &mut sets);
            sets
        } else {
            self.views_satisfying(|i| psi.clone().believed_by(i, NonRigidSet::Nonfaulty))
        }
    }

    /// The two-step construction of Theorem 5.2:
    /// `F² = step_one(step_zero(F))`, an optimal nontrivial agreement
    /// protocol dominating `F` (an optimal EBA protocol when `F` is one).
    pub fn optimize(&mut self, pair: &DecisionPair) -> DecisionPair {
        let f1 = self.step_zero(pair);
        self.step_one(&f1)
    }

    /// The symmetric two-step construction (exchange the roles of 0 and
    /// 1): `step_zero(step_one(F))`, also optimal by the symmetry noted
    /// after Proposition 5.1.
    pub fn optimize_one_first(&mut self, pair: &DecisionPair) -> DecisionPair {
        let f1 = self.step_one(pair);
        self.step_zero(&f1)
    }

    /// Iterates optimization steps (alternating zero-first/one-first as in
    /// the `F^{2,1}, F^{2,2}, …` discussion of Section 5) until the
    /// *induced decisions of nonfaulty processors* stop changing,
    /// returning the fixed point and the number of steps taken.
    ///
    /// Decision sets themselves may keep differing on views that occur
    /// only for faulty processors (where every `B^N_i` is vacuous), so the
    /// fixed point is detected on decisions, which is what domination and
    /// optimality are about. Theorem 5.2 predicts at most two steps from
    /// any nontrivial agreement protocol; exposed so the tests can
    /// *verify* that prediction rather than assume it.
    pub fn optimize_to_fixed_point(
        &mut self,
        pair: &DecisionPair,
        max_steps: usize,
    ) -> (DecisionPair, usize) {
        let mut current = self.step_zero(pair);
        let mut current_table = self.nonfaulty_decision_table(&current);
        let mut steps = 1;
        let mut zero_first = false; // next step: one-first
        while steps < max_steps {
            let next = if zero_first {
                self.step_zero(&current)
            } else {
                self.step_one(&current)
            };
            steps += 1;
            zero_first = !zero_first;
            let next_table = self.nonfaulty_decision_table(&next);
            if next_table == current_table {
                return (next, steps);
            }
            current = next;
            current_table = next_table;
        }
        (current, steps)
    }

    /// The decision table of `FIP(pair)` masked to nonfaulty processors,
    /// used for fixed-point detection.
    fn nonfaulty_decision_table(&self, pair: &DecisionPair) -> Vec<Option<eba_sim::Decision>> {
        let system = self.system();
        let d = FipDecisions::compute(system, pair, "probe");
        let n = system.n();
        let mut table = vec![None; system.num_runs() * n];
        for run in system.run_ids() {
            for p in system.nonfaulty(run) {
                table[run.index() * n + p.index()] = d.decision(run, p);
            }
        }
        table
    }

    /// Convenience: compute the decisions of `FIP(pair)` over the
    /// constructor's system.
    #[must_use]
    pub fn decisions(&self, pair: &DecisionPair, name: impl Into<String>) -> FipDecisions {
        FipDecisions::compute(self.system(), pair, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dominates, verify_properties};
    use eba_model::{FailureMode, Scenario};

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn step_zero_of_empty_is_learn_zero_rule() {
        // Section 6.1: F^{Λ,1} has Z_i = B^N_i ∃0 and O_i = B^N_i false.
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f1 = ctor.step_zero(&DecisionPair::empty(3));
        // O must contain only views at which the owner knows it is faulty
        // (B^N_i false); decisions of 1 never happen for nonfaulty
        // processors.
        let d = ctor.decisions(&f1, "F^{Λ,1}");
        let (zeros, ones, _) = crate::decision_profile(&system, &d);
        assert!(zeros > 0);
        assert_eq!(ones, 0);
        // And the Z rule matches B^N_i ∃0 exactly.
        let direct = ctor.views_satisfying(|i| {
            Formula::exists(Value::Zero).believed_by(i, NonRigidSet::Nonfaulty)
        });
        assert_eq!(f1.zero(), &direct);
    }

    #[test]
    fn each_step_dominates() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f0 = DecisionPair::empty(3);
        let f1 = ctor.step_zero(&f0);
        let f2 = ctor.step_one(&f1);
        let d0 = ctor.decisions(&f0, "F^Λ");
        let d1 = ctor.decisions(&f1, "F^{Λ,1}");
        let d2 = ctor.decisions(&f2, "F^{Λ,2}");
        assert!(dominates(&system, &d1, &d0).dominates);
        assert!(dominates(&system, &d2, &d1).dominates);
        assert!(dominates(&system, &d2, &d0).strict);
    }

    #[test]
    fn steps_preserve_nontrivial_agreement() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f1 = ctor.step_zero(&DecisionPair::empty(3));
        let f2 = ctor.step_one(&f1);
        for (pair, name) in [(&f1, "F^{Λ,1}"), (&f2, "F^{Λ,2}")] {
            let d = ctor.decisions(pair, name);
            let report = verify_properties(&system, &d);
            assert!(report.is_nontrivial_agreement(), "{name}: {report}");
        }
    }

    #[test]
    fn two_steps_reach_a_fixed_point_in_crash_mode() {
        // Theorem 5.2: F² is optimal, so a further step cannot change it.
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f2 = ctor.optimize(&DecisionPair::empty(3));
        let f3 = ctor.step_zero(&f2);
        let d2 = ctor.decisions(&f2, "F²");
        let d3 = ctor.decisions(&f3, "F³");
        // Decisions (for nonfaulty processors) must coincide.
        let fwd = dominates(&system, &d3, &d2);
        let bwd = dominates(&system, &d2, &d3);
        assert!(fwd.equivalent_times() && bwd.equivalent_times());
    }

    #[test]
    fn optimize_to_fixed_point_terminates_quickly() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let (pair, steps) = ctor.optimize_to_fixed_point(&DecisionPair::empty(3), 10);
        assert!(steps <= 4, "took {steps} steps");
        assert!(!pair.is_empty());
    }

    #[test]
    fn f_lambda_2_is_an_eba_protocol_in_crash_mode() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f2 = ctor.optimize(&DecisionPair::empty(3));
        let d = ctor.decisions(&f2, "F^{Λ,2}");
        let report = verify_properties(&system, &d);
        assert!(report.is_eba(), "{report}");
    }
}
