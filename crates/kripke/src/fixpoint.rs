//! Reference fixed-point implementations of `C_S` and `C□_S`, used for
//! differential testing of the union-find reachability engine.
//!
//! The paper defines `C_S φ` as the infinite conjunction `⋀_k E_S^k φ`,
//! equivalently the greatest fixed point of `X ↔ E_S(φ ∧ X)`, and
//! `C□_S φ` as the greatest fixed point of `X ↔ E□_S(φ ∧ X)`
//! (Section 3.3). On a finite system the greatest fixed point is reached
//! by iterating from `True`, which is what these functions do — slowly
//! but by-the-definition. [`crate::Evaluator`] computes the same
//! operators via reachability components (Proposition 3.2 /
//! Corollary 3.3); the `gfp_agrees_with_reachability` tests and the
//! property suite check the two agree bit-for-bit.

use crate::bitset::Bitset;
use crate::{Evaluator, Formula, NonRigidSet};
use eba_model::Time;
use std::sync::Arc;

/// Computes `C_S φ` by greatest-fixed-point iteration of
/// `X ← E_S(φ ∧ X)`, starting from `True`.
///
/// Returns the satisfaction bitset and the number of iterations needed
/// (including the final confirming pass).
pub fn common_by_gfp(eval: &mut Evaluator<'_>, s: NonRigidSet, phi: &Formula) -> (Bitset, usize) {
    gfp(eval, phi, |inner| inner.everyone(s))
}

/// Computes `C□_S φ` by greatest-fixed-point iteration of
/// `X ← E□_S(φ ∧ X)` where `E□_S ψ = □̄ E_S ψ`.
pub fn continual_common_by_gfp(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
) -> (Bitset, usize) {
    gfp(eval, phi, |inner| inner.everyone_box(s))
}

/// Iterates `X ← step(φ ∧ X)` from `X = True` until stable.
///
/// The intermediate `X` is injected into formulas as a registered point
/// predicate, so each iteration is a single evaluator pass; the evaluator
/// cache is still effective for the `φ` sub-evaluation.
fn gfp<F>(eval: &mut Evaluator<'_>, phi: &Formula, step: F) -> (Bitset, usize)
where
    F: Fn(Formula) -> Formula,
{
    let mut current = Bitset::new_true(eval.num_points());
    let mut iterations = 0;
    loop {
        iterations += 1;
        let x_id = eval.register_point_pred(current.clone());
        let formula = step(phi.clone().and(Formula::PointPred(x_id)));
        let next = Arc::unwrap_or_clone(eval.eval(&formula));
        if next == current {
            return (current, iterations);
        }
        current = next;
    }
}

/// Computes the bounded conjunction `⋀_{k=1..depth} E_S^k φ` — the
/// textbook definition of common knowledge truncated at `depth`. On a
/// finite system, `C_S φ` equals the value of this at any depth at least
/// the number of distinct `(i, view)` buckets; the tests use it to
/// cross-check small instances directly against the definition.
pub fn everyone_iterated(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    depth: usize,
) -> Bitset {
    let mut conjunction = Bitset::new_true(eval.num_points());
    let mut layer = phi.clone();
    for _ in 0..depth {
        layer = layer.everyone(s);
        conjunction &= &eval.eval(&layer);
    }
    conjunction
}

/// A convenience report for diffing two satisfaction sets: the number of
/// points where they disagree and a sample point.
#[must_use]
pub fn diff(eval: &Evaluator<'_>, a: &Bitset, b: &Bitset) -> Option<(usize, (usize, Time))> {
    let mut mismatches = 0;
    let mut sample = None;
    for idx in 0..a.len() {
        if a.get(idx) != b.get(idx) {
            mismatches += 1;
            if sample.is_none() {
                let (run, time) = eval.point_of(idx);
                sample = Some((run.index(), time));
            }
        }
    }
    sample.map(|s| (mismatches, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, ProcessorId, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn systems() -> Vec<GeneratedSystem> {
        vec![
            GeneratedSystem::exhaustive(&Scenario::new(3, 1, FailureMode::Crash, 2).unwrap()),
            GeneratedSystem::exhaustive(&Scenario::new(3, 1, FailureMode::Omission, 2).unwrap()),
        ]
    }

    fn formulas() -> Vec<Formula> {
        vec![
            Formula::exists(Value::Zero),
            Formula::exists(Value::One),
            Formula::exists(Value::Zero).not(),
            Formula::exists(Value::One).known_by(ProcessorId::new(0)),
            Formula::False,
            Formula::True,
        ]
    }

    #[test]
    fn gfp_agrees_with_reachability_for_common_knowledge() {
        for system in systems() {
            for phi in formulas() {
                let mut eval = Evaluator::new(&system);
                let via_reach = eval.eval(&phi.clone().common(NonRigidSet::Nonfaulty));
                let (via_gfp, iters) = common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                assert!(iters < 50, "gfp failed to converge quickly");
                assert_eq!(
                    diff(&eval, &via_reach, &via_gfp),
                    None,
                    "C_N({phi}) differs between union-find and gfp"
                );
            }
        }
    }

    #[test]
    fn gfp_agrees_with_reachability_for_continual_common_knowledge() {
        for system in systems() {
            for phi in formulas() {
                let mut eval = Evaluator::new(&system);
                let via_reach = eval.eval(&phi.clone().continual_common(NonRigidSet::Nonfaulty));
                let (via_gfp, _) = continual_common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                assert_eq!(
                    diff(&eval, &via_reach, &via_gfp),
                    None,
                    "C□_N({phi}) differs between union-find and gfp"
                );
            }
        }
    }

    #[test]
    fn iterated_everyone_converges_to_common_knowledge() {
        for system in systems() {
            let phi = Formula::exists(Value::Zero);
            let mut eval = Evaluator::new(&system);
            let exact = eval.eval(&phi.clone().common(NonRigidSet::Nonfaulty));
            // E^k must be ⊇ C for every k, and equal for large k.
            for depth in 1..=3 {
                let approx = everyone_iterated(&mut eval, NonRigidSet::Nonfaulty, &phi, depth);
                assert!(exact.is_subset(&approx), "C ⊆ E^{depth} violated");
            }
            let deep = everyone_iterated(&mut eval, NonRigidSet::Nonfaulty, &phi, 64);
            assert_eq!(diff(&eval, &exact, &deep), None);
        }
    }

    #[test]
    fn gfp_with_empty_set_is_all_true() {
        let system = &systems()[0];
        let mut eval = Evaluator::new(system);
        let empty = eval.register_state_sets(crate::StateSets::empty(3));
        let s = NonRigidSet::NonfaultyAnd(empty);
        let (set, _) = continual_common_by_gfp(&mut eval, s, &Formula::False);
        assert!(set.all(), "C□ over an empty nonrigid set must be vacuous");
    }
}
