//! Cross-protocol domination structure (Section 2.2 / experiment EXP2):
//! over every run of exhaustive crash scenarios,
//! `P0opt` dominates `P0`, `EarlyStoppingCrash`, and `FloodMin`
//! (strictly), and the non-optimal protocols form the expected partial
//! order.

use eba::prelude::*;
use eba_protocols::{EarlyStoppingCrash, FloodMin, P0Opt, Relay};
use eba_sim::execute_unchecked as execute;

/// Decision times of every nonfaulty processor across every run of the
/// scenario, as (run-key, per-processor times).
fn times_for<P: Protocol>(protocol: &P, scenario: &Scenario) -> Vec<Vec<Option<Time>>> {
    let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
    let mut out = Vec::new();
    for pattern in eba_model::enumerate::patterns(scenario) {
        for config in &configs {
            let trace = execute(protocol, config, &pattern, scenario.horizon());
            out.push(
                ProcessorId::all(scenario.n())
                    .map(|p| {
                        pattern
                            .nonfaulty_set()
                            .contains(p)
                            .then(|| trace.decision_time(p))
                            .flatten()
                    })
                    .collect(),
            );
        }
    }
    out
}

/// Returns (dominates, strictly).
fn compare(a: &[Vec<Option<Time>>], b: &[Vec<Option<Time>>]) -> (bool, bool) {
    let mut dominates = true;
    let mut strict = false;
    for (ra, rb) in a.iter().zip(b) {
        for (ta, tb) in ra.iter().zip(rb) {
            match (ta, tb) {
                (Some(ta), Some(tb)) => {
                    if ta > tb {
                        dominates = false;
                    } else if ta < tb {
                        strict = true;
                    }
                }
                (None, Some(_)) => dominates = false,
                (Some(_), None) => strict = true,
                (None, None) => {}
            }
        }
    }
    (dominates, dominates && strict)
}

#[test]
fn p0opt_strictly_dominates_the_field() {
    let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
    let opt = times_for(&P0Opt::new(1), &scenario);
    let p0 = times_for(&Relay::p0(1), &scenario);
    let early = times_for(&EarlyStoppingCrash::new(1), &scenario);
    let flood = times_for(&FloodMin::new(1), &scenario);

    for (name, other) in [("P0", &p0), ("EarlyStop", &early), ("FloodMin", &flood)] {
        let (dom, strict) = compare(&opt, other);
        assert!(dom, "P0opt fails to dominate {name}");
        assert!(strict, "P0opt should strictly dominate {name}");
    }
}

#[test]
fn early_stopping_strictly_dominates_floodmin() {
    let scenario = Scenario::new(4, 2, FailureMode::Crash, 4).unwrap();
    let early = times_for(&EarlyStoppingCrash::new(2), &scenario);
    let flood = times_for(&FloodMin::new(2), &scenario);
    let (dom, strict) = compare(&early, &flood);
    assert!(dom && strict);
}

#[test]
fn p0_does_not_dominate_p0opt() {
    let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
    let opt = times_for(&P0Opt::new(1), &scenario);
    let p0 = times_for(&Relay::p0(1), &scenario);
    let (dom, _) = compare(&p0, &opt);
    assert!(!dom);
}

/// P0 and P0opt decide 0 at identical times: the paper's point that the
/// optimization cannot touch the decide-0 rule (no correct protocol
/// decides 0 faster than "first learn of a 0").
#[test]
fn decide_zero_times_match_between_p0_and_p0opt() {
    let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
    let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(4).collect();
    for pattern in eba_model::enumerate::patterns(&scenario) {
        for config in &configs {
            let a = execute(&Relay::p0(1), config, &pattern, scenario.horizon());
            let b = execute(&P0Opt::new(1), config, &pattern, scenario.horizon());
            for p in pattern.nonfaulty_set() {
                let da = a.decision(p);
                let db = b.decision(p);
                if let (Some(da), Some(db)) = (da, db) {
                    if da.value == Value::Zero && db.value == Value::Zero {
                        assert_eq!(da.time, db.time, "{config} {pattern} {p}");
                    }
                }
            }
        }
    }
}
