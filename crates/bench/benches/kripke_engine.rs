//! EXP10 companion: cost of the knowledge engine — system generation,
//! continual-common-knowledge evaluation, and the full two-step
//! optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{Constructor, DecisionPair, FipDecisions};
use eba_kripke::{Evaluator, Formula, NonRigidSet};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario"),
        Scenario::new(4, 1, FailureMode::Crash, 3).expect("valid scenario"),
        Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario"),
    ]
}

fn system_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_generation");
    for scenario in scenarios() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario),
            &scenario,
            |b, scenario| b.iter(|| black_box(GeneratedSystem::exhaustive(scenario))),
        );
    }
    group.finish();
}

fn continual_common_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("continual_common_knowledge");
    for scenario in scenarios() {
        let system = GeneratedSystem::exhaustive(&scenario);
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario),
            &system,
            |b, system| {
                b.iter(|| {
                    // Fresh evaluator each iteration: measure the
                    // reachability construction, not the cache hit.
                    let mut eval = Evaluator::new(system);
                    let f = Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty);
                    black_box(eval.eval(&f));
                });
            },
        );
    }
    group.finish();
}

fn two_step_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_step_optimization");
    group.sample_size(10);
    for scenario in scenarios() {
        let system = GeneratedSystem::exhaustive(&scenario);
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario),
            &system,
            |b, system| {
                b.iter(|| {
                    let mut ctor = Constructor::new(system);
                    let pair = ctor.optimize(&DecisionPair::empty(system.n()));
                    black_box(FipDecisions::compute(system, &pair, "F^{Λ,2}"));
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = system_generation, continual_common_knowledge, two_step_optimization
}
criterion_main!(benches);
