//! Differential suite for the set-representation backends: on random
//! formulas and across scenario spaces, the shared (hash-consed
//! node-table) backend must produce **bit-identical** results to the
//! dense word-block backend — extensions, decisions, optimality
//! verdicts, and gfp iteration counts — including on symmetry-quotiented
//! systems, chaos-disturbed builds, budget-partial systems, and across
//! horizon extensions of one incremental session.
//!
//! The backends share all computation (every sweep and fixpoint runs on
//! dense words in both modes; the shared backend is a storage and
//! combination layer behind the knowledge cache), so equality here is by
//! construction — which is exactly what makes this suite cheap to keep
//! exhaustive: any divergence means the interning layer leaked into
//! semantics.

use eba::prelude::*;
use eba_kripke::fixpoint;
use proptest::prelude::*;
use std::sync::OnceLock;

fn crash_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

fn omission_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

fn general_omission_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

/// An evaluator over `system` with a private cache on the given backend.
fn evaluator(system: &GeneratedSystem, repr: SetReprKind) -> Evaluator<'_> {
    Evaluator::with_cache(system, KnowledgeCache::with_repr(repr))
}

/// A generator of epistemic-temporal formulas over 3 processors (no
/// registered ids, so formulas are portable across evaluators).
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::exists(Value::Zero)),
        Just(Formula::exists(Value::One)),
        (0usize..3, prop_oneof![Just(Value::Zero), Just(Value::One)])
            .prop_map(|(i, v)| Formula::Initial(ProcessorId::new(i), v)),
        (0usize..3).prop_map(|i| Formula::Nonfaulty(ProcessorId::new(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (0usize..3, inner.clone()).prop_map(|(i, f)| f.known_by(ProcessorId::new(i))),
            (0usize..3, inner.clone())
                .prop_map(|(i, f)| { f.believed_by(ProcessorId::new(i), NonRigidSet::Nonfaulty) }),
            inner
                .clone()
                .prop_map(|f| f.everyone(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(|f| f.common(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.continual_common(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::always_all),
            inner.prop_map(Formula::sometime_all),
        ]
    })
}

/// Evaluates `phi` on both backends over `system` and asserts the
/// extensions are bit-identical. Evaluates twice on the shared side so
/// the second pass is served through interned cache artifacts.
fn assert_backends_agree(
    system: &GeneratedSystem,
    phi: &Formula,
    label: &str,
) -> Result<(), TestCaseError> {
    let mut dense = evaluator(system, SetReprKind::Dense);
    let mut shared = evaluator(system, SetReprKind::Shared);
    let want = dense.eval(phi);
    let got = shared.eval(phi);
    prop_assert_eq!(
        &*want,
        &*got,
        "dense and shared backends disagree on {} over {}",
        phi,
        label
    );
    // A second evaluation from a fresh evaluator over the same (warm)
    // shared cache: reachability and scope columns now come back
    // through the node table.
    let warm_cache = shared.knowledge_cache().clone();
    let mut rewarmed = Evaluator::with_cache(system, warm_cache);
    let again = rewarmed.eval(phi);
    prop_assert_eq!(
        &*want,
        &*again,
        "a warm shared cache changed the extension of {} over {}",
        phi,
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core differential property: on random formulas, shared-backend
    /// extensions equal dense ones on exhaustive crash, omission, and
    /// general-omission systems — cold and through a warm shared cache.
    #[test]
    fn shared_matches_dense_on_random_formulas(
        phi in formula_strategy(),
        which in 0usize..3,
    ) {
        let (system, label) = match which {
            0 => (crash_system(), "crash (exhaustive)"),
            1 => (omission_system(), "omission (exhaustive)"),
            _ => (general_omission_system(), "general-omission (exhaustive)"),
        };
        assert_backends_agree(system, &phi, label)?;
    }

    /// Gfp fixpoints agree in result *and* iteration count across
    /// backends, for both `C_S` and `C□_S`: the iteration always runs
    /// dense, so the counts must be identical by construction.
    #[test]
    fn gfp_iteration_counts_are_identical_across_backends(
        phi in formula_strategy(),
        which in 0usize..3,
        continual in proptest::bool::ANY,
    ) {
        let system = match which {
            0 => crash_system(),
            1 => omission_system(),
            _ => general_omission_system(),
        };
        let mut dense = evaluator(system, SetReprKind::Dense);
        let mut shared = evaluator(system, SetReprKind::Shared);
        let s = NonRigidSet::Nonfaulty;
        let ((a, ia), (b, ib)) = if continual {
            (
                fixpoint::continual_common_by_gfp(&mut dense, s, &phi),
                fixpoint::continual_common_by_gfp(&mut shared, s, &phi),
            )
        } else {
            (
                fixpoint::common_by_gfp(&mut dense, s, &phi),
                fixpoint::common_by_gfp(&mut shared, s, &phi),
            )
        };
        prop_assert_eq!(&a, &b, "gfp results diverge across backends on {}", &phi);
        prop_assert_eq!(ia, ib, "gfp iteration counts diverge across backends on {}", &phi);
    }

    /// Symmetry on/off × backend: the quotiented system evaluated under
    /// the shared backend equals its dense evaluation, and likewise for
    /// the unreduced system (processor-symmetric formulas only, as the
    /// quotient requires).
    #[test]
    fn shared_matches_dense_on_quotiented_systems(
        phi in formula_strategy(),
    ) {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let reduced = SystemBuilder::new(&scenario).symmetry(true).build().unwrap();
        assert_backends_agree(&reduced, &phi, "crash (quotiented)")?;
        assert_backends_agree(crash_system(), &phi, "crash (unreduced)")?;
    }
}

/// A pseudo-random state-set family over `system`'s view table, derived
/// deterministically from `seed` (splitmix64 per `(processor, view)`), so
/// the same seed registers the same family on any evaluator.
fn random_family(system: &GeneratedSystem, seed: u64, keep_mod: u64) -> StateSets {
    let n = system.n();
    let mut family = StateSets::empty(n);
    for p in ProcessorId::all(n) {
        for (k, v) in system.table().ids().enumerate() {
            let mut x = seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + k as u64))
                .wrapping_add(0x1000_0000 * p.index() as u64);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            if x.is_multiple_of(keep_mod) {
                family.insert(p, v);
            }
        }
    }
    family
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Registered `N ∧ A` families flow through the shared backend's
    /// node-table cache keys (interned family roots instead of raw word
    /// vectors); the served knowledge must not notice.
    #[test]
    fn registered_families_agree_across_backends(
        seed in proptest::num::u64::ANY,
        keep_mod in 1u64..5,
    ) {
        let system = omission_system();
        let mut dense = evaluator(system, SetReprKind::Dense);
        let mut shared = evaluator(system, SetReprKind::Shared);
        let fam = random_family(system, seed, keep_mod);
        let a = dense.register_state_sets(fam.clone());
        prop_assert_eq!(a, shared.register_state_sets(fam));
        let phi = Formula::exists(Value::Zero);
        for formula in [
            phi.clone().common(NonRigidSet::NonfaultyAnd(a)),
            phi.clone().continual_common(NonRigidSet::NonfaultyAnd(a)),
            phi.clone()
                .believed_by(ProcessorId::new(1), NonRigidSet::NonfaultyAnd(a))
                .eventually(),
        ] {
            prop_assert_eq!(
                &*dense.eval(&formula),
                &*shared.eval(&formula),
                "backends disagree on registered-family formula {}",
                &formula
            );
        }
        // The shared cache actually interned the family and columns: the
        // node table must be non-empty after serving those queries.
        let stats = shared.knowledge_cache().stats();
        prop_assert!(stats.nodes > 0, "shared backend served without interning: {}", stats);
    }
}

/// Chaos supervision must stay invisible to the shared backend: with a
/// panic injected into a reachability worker, shared-backend evaluation
/// still matches a fault-free dense oracle bit for bit.
#[test]
fn shared_matches_dense_under_chaos_supervision() {
    use eba_sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
    use std::sync::Arc;
    // Big enough that reachability edge collection fans out to the
    // supervised worker pool, so the injected panic lands in a worker.
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let phi = Formula::exists(Value::Zero);
    let formula = phi
        .clone()
        .continual_common(NonRigidSet::Nonfaulty)
        .or(phi.common(NonRigidSet::Everyone).not());

    let mut dense = evaluator(&system, SetReprKind::Dense);
    dense.set_threads(1);
    let want = dense.eval(&formula);

    let chaos =
        Arc::new(ChaosPlan::new().with_fault(FaultSite::ReachabilityWorker, 0, FaultKind::Panic));
    let mut chaotic = evaluator(&system, SetReprKind::Shared);
    chaotic.set_threads(4);
    chaotic.set_chaos(Arc::clone(&chaos) as Arc<dyn FaultInjector>);
    let got = chaotic.eval(&formula);
    assert_eq!(chaos.fired(), 1, "the planned worker panic must have fired");
    assert_eq!(*got, *want, "chaos recovery changed a shared-backend extension");
}

/// Budget-partial systems (prefix of shards): shared-backend extensions
/// on them equal the dense backend's.
#[test]
fn shared_matches_dense_on_budget_partial_system() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let outcome = SystemBuilder::new(&scenario)
        .threads(2)
        .shards(8)
        .budget(RunBudget::unlimited().with_max_runs(40))
        .build_governed()
        .expect("governed build failed");
    let system = match outcome {
        BuildOutcome::Partial { system, .. } => system,
        BuildOutcome::Complete { .. } => {
            panic!("max-runs budget should have cut the build short")
        }
    };
    assert!(system.num_runs() > 0, "need a nonempty partial prefix");

    let phi = Formula::exists(Value::One);
    for formula in [
        phi.clone().everyone(NonRigidSet::Nonfaulty),
        phi.clone().common(NonRigidSet::Nonfaulty),
        phi.clone().continual_common(NonRigidSet::Nonfaulty).not(),
        phi.clone().distributed(NonRigidSet::Everyone).eventually(),
    ] {
        let mut dense = evaluator(&system, SetReprKind::Dense);
        let mut shared = evaluator(&system, SetReprKind::Shared);
        assert_eq!(
            *dense.eval(&formula),
            *shared.eval(&formula),
            "partial-system extensions diverge across backends on {formula}"
        );
    }
}

/// The optimization pipeline must produce the same decision sets and the
/// same Theorem 5.3 optimality verdict on both backends, down to the
/// per-run decision tables.
#[test]
fn decisions_and_optimality_verdicts_agree_across_backends() {
    let system = omission_system();
    let mut dense_ctor = Constructor::with_cache(system, KnowledgeCache::new());
    let mut shared_ctor =
        Constructor::with_cache(system, KnowledgeCache::with_repr(SetReprKind::Shared));
    let base = DecisionPair::empty(3);
    let optimized_dense = dense_ctor.optimize(&base);
    let optimized_shared = shared_ctor.optimize(&base);
    assert_eq!(
        optimized_dense, optimized_shared,
        "optimized decision pairs diverge across backends"
    );
    let d_dense = FipDecisions::compute(system, &optimized_dense, "dense");
    let d_shared = FipDecisions::compute(system, &optimized_shared, "shared");
    for r in system.run_ids() {
        for i in ProcessorId::all(3) {
            let a = d_dense.decision(r, i).map(|d| (d.time, d.value));
            let b = d_shared.decision(r, i).map(|d| (d.time, d.value));
            assert_eq!(a, b, "decision of {i} in run {} diverges", r.index());
        }
    }
    let v_dense = check_optimality(&mut dense_ctor, &optimized_dense).is_optimal();
    let v_shared = check_optimality(&mut shared_ctor, &optimized_shared).is_optimal();
    assert_eq!(v_dense, v_shared, "optimality verdicts diverge across backends");
}

/// Horizon extension: one incremental session per backend, grown through
/// the same horizons; per-horizon extensions and reuse accounting must be
/// identical, and the shared session's node table must be purged at each
/// epoch (stale roots can never be served across extensions).
#[test]
fn incremental_sessions_agree_across_backends() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let mut dense = EngineSession::exhaustive(&scenario).unwrap();
    let mut shared = EngineSession::exhaustive_with_repr(&scenario, SetReprKind::Shared).unwrap();
    assert_eq!(dense.set_repr(), SetReprKind::Dense);
    assert_eq!(shared.set_repr(), SetReprKind::Shared);
    let phi = Formula::exists(Value::Zero);
    let formula = phi
        .clone()
        .continual_common(NonRigidSet::Nonfaulty)
        .or(phi.common(NonRigidSet::Nonfaulty).not());
    for h in [2u16, 3, 4] {
        if h > 2 {
            let a = dense.extend_to(h).unwrap();
            let b = shared.extend_to(h).unwrap();
            assert_eq!(a, b, "extension reuse accounting diverges at horizon {h}");
        }
        let mut dense_eval = dense.evaluator();
        let mut shared_eval = shared.evaluator();
        assert_eq!(
            *dense_eval.eval(&formula),
            *shared_eval.eval(&formula),
            "extensions diverge across backends at horizon {h}"
        );
        let stats = shared.cache().stats();
        assert_eq!(stats.set_repr, SetReprKind::Shared);
        assert!(
            stats.nodes > 0,
            "the shared session must re-intern after each extension: {stats}"
        );
    }
    assert_eq!(dense.epoch(), shared.epoch());
}
