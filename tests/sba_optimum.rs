//! The waste-based simultaneous protocol `SbaWaste` against the *exact*
//! common-knowledge SBA rule (the \[DM90\]/\[MT88\] characterization the
//! paper builds on): decisions at identical times, with consistent
//! values, over exhaustive crash systems.
//!
//! This is a differential test of a \[DM90\]-style implementation against
//! the definition: the exact rule decides the moment `C_N ∃v` holds,
//! evaluated by the model checker; `SbaWaste` recomputes that moment from
//! gossiped crash evidence alone.

use eba::prelude::*;
use eba_core::protocols::sba_common_knowledge_pair;
use eba_protocols::SbaWaste;
use eba_sim::execute_unchecked as execute;

fn check(n: usize, t: usize, horizon: u16) {
    let scenario = Scenario::new(n, t, FailureMode::Crash, horizon).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let exact_pair = sba_common_knowledge_pair(&mut ctor);
    let exact = FipDecisions::compute(&system, &exact_pair, "C_N-SBA");

    let protocol = SbaWaste::new(n, t);
    let mut compared = 0u64;
    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute(
            &protocol,
            &record.config,
            &record.pattern,
            scenario.horizon(),
        );
        for p in record.nonfaulty {
            let exact_time = exact.decision_time(run, p);
            let waste_time = trace.decision_time(p);
            assert_eq!(
                exact_time,
                waste_time,
                "decision times diverge at run {} ({} / [{}]), {p}: \
                 exact {exact_time:?} vs waste {waste_time:?}",
                run.index(),
                record.config,
                record.pattern,
            );
            compared += 1;
        }
        // Values must agree too (both rules are deterministic; the waste
        // rule decides 0 iff a 0 is known at decision time, the exact
        // rule iff C_N ∃0 holds — these can only differ if the run's
        // common information differs, which the time equality rules out;
        // assert anyway).
        for p in record.nonfaulty {
            assert_eq!(
                exact.decision(run, p).map(|d| d.value),
                trace.decided_value(p),
                "decision values diverge at run {} ({} / [{}]), {p}",
                run.index(),
                record.config,
                record.pattern,
            );
        }
    }
    assert!(compared > 0);
}

#[test]
fn waste_rule_matches_exact_common_knowledge_n3_t1() {
    check(3, 1, 3);
}

#[test]
fn waste_rule_matches_exact_common_knowledge_n4_t1() {
    check(4, 1, 3);
}

#[test]
fn waste_rule_matches_exact_common_knowledge_n4_t2() {
    check(4, 2, 5);
}

#[test]
fn waste_rule_matches_exact_common_knowledge_n3_t2() {
    check(3, 2, 4);
}
