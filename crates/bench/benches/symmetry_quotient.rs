//! Symmetry-quotient speedup: the reduced engine (one representative
//! failure pattern per `Sym(n)` orbit, orbit-canonical knowledge
//! kernels) against the unreduced oracle, on the observables the
//! differential suite proves bit-identical — `CC(E0)` evaluation and
//! the full two-step optimization + Theorem 5.3 check. The
//! `BENCH_engine.json` `symmetry-quotient` record is regenerated from
//! these groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{check_optimality, Constructor, DecisionPair};
use eba_kripke::{Evaluator, Formula, NonRigidSet};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::{GeneratedSystem, SystemBuilder};
use std::hint::black_box;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(4, 1, FailureMode::Omission, 2).expect("valid scenario"),
        Scenario::new(4, 1, FailureMode::Crash, 3).expect("valid scenario"),
    ]
}

/// The large space: 10 401 crash patterns quotient to 183 orbits
/// (56.8x), so the unreduced side dominates this group's wall time.
fn large_scenario() -> Scenario {
    Scenario::new(5, 2, FailureMode::Crash, 2).expect("valid scenario")
}

fn reduced(scenario: &Scenario) -> GeneratedSystem {
    SystemBuilder::new(scenario)
        .symmetry(true)
        .build()
        .expect("scenario fits id capacity")
}

fn quotient_vs_unreduced_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_quotient_cc");
    group.sample_size(10);
    for scenario in scenarios().into_iter().chain([large_scenario()]) {
        for (label, system) in [
            ("unreduced", GeneratedSystem::exhaustive(&scenario)),
            ("quotient", reduced(&scenario)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, scenario), &system, |b, system| {
                b.iter(|| {
                    // Fresh evaluator per iteration: measure the
                    // reachability + gfp work, not a cache hit.
                    let mut eval = Evaluator::new(system);
                    let f = Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty);
                    black_box(eval.eval(&f));
                });
            });
        }
    }
    group.finish();
}

fn quotient_vs_unreduced_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_quotient_optimize");
    group.sample_size(10);
    for scenario in scenarios() {
        for (label, system) in [
            ("unreduced", GeneratedSystem::exhaustive(&scenario)),
            ("quotient", reduced(&scenario)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, scenario), &system, |b, system| {
                b.iter(|| {
                    let mut ctor = Constructor::new(system);
                    let pair = ctor.optimize(&DecisionPair::empty(system.n()));
                    black_box(check_optimality(&mut ctor, &pair).is_optimal());
                });
            });
        }
    }
    group.finish();
}

fn quotient_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_quotient_build");
    group.sample_size(10);
    for scenario in scenarios().into_iter().chain([large_scenario()]) {
        for label in ["unreduced", "quotient"] {
            group.bench_with_input(
                BenchmarkId::new(label, scenario),
                &scenario,
                |b, scenario| {
                    b.iter(|| match label {
                        "quotient" => black_box(reduced(scenario)),
                        _ => black_box(GeneratedSystem::exhaustive(scenario)),
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    quotient_vs_unreduced_cc,
    quotient_vs_unreduced_optimize,
    quotient_build
);
criterion_main!(benches);
