//! Runs the entire experiment suite (EXP1–EXP13) in sequence.
use eba_bench::experiments as exp;

fn main() {
    let suites: Vec<(&str, Vec<eba_bench::Table>)> = vec![
        ("EXP1", exp::exp1()),
        ("EXP2", exp::exp2()),
        ("EXP3", exp::exp3()),
        ("EXP4", exp::exp4()),
        ("EXP5", exp::exp5()),
        ("EXP6", exp::exp6()),
        ("EXP7", exp::exp7()),
        ("EXP8", exp::exp8()),
        ("EXP9", exp::exp9()),
        ("EXP10", exp::exp10()),
        ("EXP11", exp::exp11()),
        ("EXP12", exp::exp12()),
        ("EXP13", exp::exp13()),
    ];
    for (name, tables) in suites {
        eprintln!("[{name}] done");
        for table in tables {
            table.print();
        }
    }
    exp::exp6b_f_star_gain().print();
    exp::exp6c_two_optima().print();
    exp::exp7b().print();
}
