//! Processor and point identities.

use crate::ModelError;
use std::fmt;

/// The identity of a processor in the system.
///
/// Processors are numbered `0..n`. The paper numbers them `1..=n`; we use
/// zero-based indices throughout the code and render them one-based in
/// human-readable output via [`fmt::Display`] to stay close to the paper's
/// notation.
///
/// # Example
///
/// ```
/// use eba_model::ProcessorId;
///
/// let p = ProcessorId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessorId(u8);

impl ProcessorId {
    /// The largest number of processors supported by [`crate::ProcSet`].
    pub const MAX_PROCESSORS: usize = 128;

    /// Creates a processor id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ProcessorId::MAX_PROCESSORS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_PROCESSORS,
            "processor index {index} exceeds the supported maximum of {}",
            Self::MAX_PROCESSORS
        );
        ProcessorId(index as u8)
    }

    /// Returns the zero-based index of this processor.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all processor ids in a system of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessorId::MAX_PROCESSORS`.
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessorId> + Clone {
        assert!(n <= Self::MAX_PROCESSORS);
        (0..n).map(|i| ProcessorId(i as u8))
    }
}

impl From<ProcessorId> for usize {
    fn from(id: ProcessorId) -> usize {
        id.index()
    }
}

/// The number of points an engine structure can address (`PointId` is a
/// `u32`).
pub const POINT_CAPACITY: u128 = 1 << 32;

/// A dense identifier of a *point* — a (run, time) pair of a generated
/// system, numbered `run × (horizon + 1) + time`.
///
/// Points are the worlds of the Kripke structure: every formula denotes a
/// set of points, and the columnar point store of `eba-sim` keys all of
/// its parallel columns by this id. The numbering is owned by the system
/// that issued the id; ids are not meaningful across systems.
///
/// # Example
///
/// ```
/// use eba_model::PointId;
///
/// let p = PointId::new(7);
/// assert_eq!(p.index(), 7);
/// assert_eq!(p.to_string(), "point#7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PointId(u32);

impl PointId {
    /// Creates a point id from a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit a `u32`; for untrusted indices use
    /// [`PointId::try_new`].
    #[must_use]
    pub fn new(index: usize) -> Self {
        match PointId::try_new(index) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`PointId::new`], reporting id-space exhaustion as a
    /// [`ModelError::CapacityExceeded`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when `index` exceeds
    /// [`POINT_CAPACITY`].
    pub fn try_new(index: usize) -> Result<Self, ModelError> {
        u32::try_from(index)
            .map(PointId)
            .map_err(|_| ModelError::capacity_exceeded("point ids", POINT_CAPACITY))
    }

    /// The linear index of this point.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<PointId> for usize {
    fn from(id: PointId) -> usize {
        id.index()
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point#{}", self.0)
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 127] {
            assert_eq!(ProcessorId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn new_rejects_out_of_range() {
        let _ = ProcessorId::new(128);
    }

    #[test]
    fn all_yields_n_distinct_ids() {
        let ids: Vec<_> = ProcessorId::all(5).collect();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(ProcessorId::new(0).to_string(), "p1");
        assert_eq!(ProcessorId::new(3).to_string(), "p4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessorId::new(1) < ProcessorId::new(2));
    }

    #[test]
    fn point_ids_round_trip() {
        for i in [0usize, 1, 4096, u32::MAX as usize] {
            assert_eq!(PointId::new(i).index(), i);
            assert_eq!(PointId::try_new(i).unwrap(), PointId::new(i));
        }
    }

    #[test]
    fn point_id_overflow_is_typed() {
        let err = PointId::try_new(usize::MAX).unwrap_err();
        assert!(matches!(err, ModelError::CapacityExceeded { .. }));
        assert!(err.to_string().contains("point ids"));
    }

    #[test]
    fn point_ids_order_by_index() {
        assert!(PointId::new(3) < PointId::new(4));
        assert_eq!(PointId::new(9).to_string(), "point#9");
    }
}
