//! Cost of the full-information view machinery: computing and interning
//! one run's views, at message-level system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_model::sample::{self, PatternSampler};
use eba_model::{FailureMode, Scenario, Time};
use eba_sim::ViewTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn view_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fip_views_one_run");
    for n in [4usize, 8, 16, 32] {
        let t = n / 4;
        let scenario =
            Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let mut rng = StdRng::seed_from_u64(n as u64);
        let sampler = PatternSampler::new(scenario);
        let config = sample::random_config(n, &mut rng);
        let pattern = sampler.sample(&mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(config, pattern),
            |b, (config, pattern)| {
                b.iter(|| {
                    let mut table = ViewTable::new();
                    black_box(eba_sim::fip_views(
                        config,
                        pattern,
                        scenario.horizon(),
                        &mut table,
                    ));
                });
            },
        );
    }
    group.finish();
}

fn interning_shared_across_runs(c: &mut Criterion) {
    // Interning 100 runs into one shared table: measures hash-consing
    // efficiency (the dedup ratio is asserted in tests; here we time it).
    let n = 8;
    let scenario = Scenario::new(n, 2, FailureMode::Crash, 4).expect("valid scenario");
    let mut rng = StdRng::seed_from_u64(5);
    let sampler = PatternSampler::new(scenario);
    let runs: Vec<_> = (0..100)
        .map(|_| (sample::random_config(n, &mut rng), sampler.sample(&mut rng)))
        .collect();
    c.bench_function("fip_views_100_runs_shared_table", |b| {
        b.iter(|| {
            let mut table = ViewTable::new();
            for (config, pattern) in &runs {
                black_box(eba_sim::fip_views(
                    config,
                    pattern,
                    Time::new(4),
                    &mut table,
                ));
            }
            black_box(table.len());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = view_interning, interning_shared_across_runs
}
criterion_main!(benches);
