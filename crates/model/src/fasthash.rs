//! A fast, deterministic hasher for the small fixed-width keys that
//! dominate the engine's hot paths (view ids, processor ids, formula
//! trees).
//!
//! `std`'s default SipHash is keyed per process for HashDoS resistance,
//! which the engine does not need: every map and set here is keyed by
//! internally-generated ids or structural formula hashes, never by
//! untrusted input. The multiplicative rotate-xor scheme below (the
//! well-known `fxhash` recipe from rustc) hashes a `u32` in a couple of
//! cycles, which turns the view-set constructions of decision-set
//! extraction from the dominant cost of a warm optimize sweep into
//! noise.
//!
//! Determinism across processes is a feature: knowledge-cache digests
//! and test expectations never depend on a per-process random seed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The `fxhash` multiplier (a rounded fractional golden ratio, as used
/// by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic [`Hasher`] for trusted, internally-generated
/// keys; see the module docs.
///
/// # Example
///
/// ```
/// use eba_model::fasthash::FastSet;
///
/// let mut views: FastSet<u32> = FastSet::default();
/// views.insert(7);
/// assert!(views.contains(&7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FastHasher`] (zero-sized, default
/// state).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"views"), hash_of(&"views"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn byte_stream_matches_wordwise_padding() {
        // write() folds 8-byte little-endian chunks; a 4-byte slice hashes
        // like its zero-extended word.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4]);
        let mut b = FastHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_and_map_aliases_work() {
        let mut map: FastMap<u32, &str> = FastMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
        let set: FastSet<u32> = (0..100).collect();
        assert_eq!(set.len(), 100);
    }
}
