//! Incremental horizon sweeps (DESIGN.md §4f): an [`EngineSession`] grows
//! one system across a range of horizons, reusing base view rows and
//! epoch-fencing the knowledge cache, versus the cold path that rebuilds
//! every horizon from scratch. The cold side is the differential oracle
//! (`tests/incremental_equivalence.rs`), so both sides produce identical
//! systems — the bench measures the cost of that identical output.

use criterion::{criterion_group, criterion_main, Criterion};
use eba_core::{Constructor, DecisionPair, EngineSession, FipDecisions, SessionScope};
use eba_model::{FailureMode, Scenario};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

/// Pinned-run sweep at paper scale: n=5, t=2, crash, 400 sampled runs,
/// horizon 2 grown through 6 (four extension steps). Generation only —
/// the sim-layer reuse is what the session changes.
fn pinned_sweep_generation(c: &mut Criterion) {
    let scenario = Scenario::new(5, 2, FailureMode::Crash, 2).expect("valid scenario");
    let base = GeneratedSystem::sampled(&scenario, 400, 0xEBA);
    let horizons = [3u16, 4, 5, 6];

    let mut group = c.benchmark_group("horizon_sweep_pinned_n5t2");
    group.sample_size(10);

    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut session = EngineSession::from_system(base.clone(), SessionScope::PinnedRuns);
            for h in horizons {
                session.extend_to(h).expect("horizon grows");
                black_box(session.system().num_points());
            }
        });
    });

    group.bench_function("cold", |b| {
        b.iter(|| {
            for h in horizons {
                let delta = scenario.extend_horizon(h).expect("horizon grows");
                let specs: Vec<_> = base
                    .run_ids()
                    .map(|r| {
                        let record = base.run(r);
                        (record.config.clone(), delta.pad_pattern(&record.pattern))
                    })
                    .collect();
                let target = scenario.with_horizon(h).expect("valid scenario");
                let system = GeneratedSystem::from_runs(&target, specs);
                black_box(system.num_points());
            }
        });
    });

    group.finish();
}

/// Full-space end-to-end sweep: exhaustive n=3, t=1 crash system grown
/// from horizon 2 through 4, with the Theorem 5.2 optimization re-run at
/// every horizon — the `eba-check --horizon-sweep` workload.
fn full_space_sweep_end_to_end(c: &mut Criterion) {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).expect("valid scenario");
    let base = GeneratedSystem::exhaustive(&scenario);
    let horizons = [3u16, 4];

    let mut group = c.benchmark_group("horizon_sweep_full_n3t1");
    group.sample_size(10);

    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut session = EngineSession::from_system(base.clone(), SessionScope::FullSpace);
            for h in horizons {
                session.extend_to(h).expect("horizon grows");
                let pair = session.constructor().optimize(&DecisionPair::empty(3));
                black_box(FipDecisions::compute(session.system(), &pair, "F^{Λ,2}"));
            }
        });
    });

    group.bench_function("cold", |b| {
        b.iter(|| {
            for h in horizons {
                let target = scenario.with_horizon(h).expect("valid scenario");
                let system = GeneratedSystem::exhaustive(&target);
                let mut ctor = Constructor::new(&system);
                let pair = ctor.optimize(&DecisionPair::empty(3));
                black_box(FipDecisions::compute(&system, &pair, "F^{Λ,2}"));
            }
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = pinned_sweep_generation, full_space_sweep_end_to_end
}
criterion_main!(benches);
