//! Thread-scaling sweep for the work-stealing engine: the three
//! supervised stages — cold build, horizon extension, and batched
//! reachability — timed at workers ∈ {1, 2, 4, 8} on the same inputs.
//!
//! The output is bit-identical at every worker count (enforced by
//! `tests/parallel_equivalence.rs`), so this sweep is a pure throughput
//! measurement: on a many-core host the medians should drop with the
//! worker count until the stage's item count or the host's core count
//! saturates; on a single-core host all columns coincide (modulo
//! scheduling overhead) and the numbers record that honestly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_kripke::{Bitset, Evaluator, Formula, NonRigidSet};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::SystemBuilder;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_scaling(c: &mut Criterion) {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario");
    let mut group = c.benchmark_group("parallel_scaling_build");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(
                        SystemBuilder::new(&scenario)
                            .threads(workers)
                            .build()
                            .expect("bench scenario fits the run capacity"),
                    )
                });
            },
        );
    }
    group.finish();
}

fn extend_scaling(c: &mut Criterion) {
    let base_scenario = Scenario::new(3, 1, FailureMode::Omission, 1).expect("valid scenario");
    let target = Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario");
    let base = SystemBuilder::new(&base_scenario)
        .threads(1)
        .build()
        .expect("base build");
    let mut group = c.benchmark_group("parallel_scaling_extend");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let (system, report) = SystemBuilder::new(&target)
                        .threads(workers)
                        .extend(&base)
                        .expect("extension");
                    black_box((system.num_runs(), report.reused_runs))
                });
            },
        );
    }
    group.finish();
}

fn reachability_scaling(c: &mut Criterion) {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario");
    let system = SystemBuilder::new(&scenario)
        .threads(1)
        .build()
        .expect("build");
    let phi = Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty);
    let mut group = c.benchmark_group("parallel_scaling_reachability");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut eval = Evaluator::new(&system);
                    eval.set_threads(workers);
                    black_box(eval.eval(&phi).count_ones())
                });
            },
        );
    }
    group.finish();
}

/// The word-block kernels head to head with the scalar loops they
/// replaced. The end-to-end suites bury the dense set algebra under
/// traversal and interning work (and, on a noisy shared host, under the
/// run-to-run noise floor), so the kernel claim is measured where the
/// kernels run: large dense bitsets, one operation per iteration. The
/// scalar references are verbatim the pre-kernel implementations.
fn word_kernels(c: &mut Criterion) {
    const BITS: usize = 1 << 20;
    let mut group = c.benchmark_group("word_kernels");

    // A pseudo-random word soup, mirrored into a Bitset (kernel side)
    // and a bare Vec<u64> (scalar side) so both operate on identical
    // data of identical length.
    let soup = |seed: u64| -> Vec<u64> {
        let mut state = seed;
        (0..BITS / 64)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    };
    let to_bitset = |words: &[u64]| -> Bitset {
        let mut set = Bitset::new_false(BITS);
        for (w, word) in words.iter().enumerate() {
            for b in 0..64 {
                if word >> b & 1 == 1 {
                    set.set(w * 64 + b, true);
                }
            }
        }
        set
    };
    let a_words = soup(0xEBA);
    let b_words = soup(0x9E37);
    let a_set = to_bitset(&a_words);
    let b_set = to_bitset(&b_words);

    group.bench_function("count_ones/scalar", |b| {
        b.iter(|| {
            black_box(
                black_box(&a_words)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>(),
            )
        });
    });
    group.bench_function("count_ones/kernel", |b| {
        b.iter(|| black_box(black_box(&a_set).count_ones()));
    });

    group.bench_function("and_assign/scalar", |b| {
        let mut dst = a_words.clone();
        b.iter(|| {
            for (d, s) in dst.iter_mut().zip(black_box(&b_words)) {
                *d &= *s;
            }
            black_box(dst[0])
        });
    });
    group.bench_function("and_assign/kernel", |b| {
        let mut dst = a_set.clone();
        b.iter(|| {
            dst &= black_box(&b_set);
            black_box(dst.len())
        });
    });

    group.bench_function("and_implication/scalar", |b| {
        let mut dst = a_words.clone();
        b.iter(|| {
            for ((d, a), c) in dst
                .iter_mut()
                .zip(black_box(&a_words))
                .zip(black_box(&b_words))
            {
                *d &= !*a | *c;
            }
            black_box(dst[0])
        });
    });
    group.bench_function("and_implication/kernel", |b| {
        let mut dst = a_set.clone();
        b.iter(|| {
            dst.and_implication(black_box(&a_set), black_box(&b_set));
            black_box(dst.len())
        });
    });

    // Subset on a worst-case (full scan) pair: self against self.
    group.bench_function("is_subset/scalar", |b| {
        b.iter(|| {
            black_box(
                black_box(&a_words)
                    .iter()
                    .zip(black_box(&a_words))
                    .all(|(x, y)| x & !y == 0),
            )
        });
    });
    group.bench_function("is_subset/kernel", |b| {
        b.iter(|| black_box(black_box(&a_set).is_subset(black_box(&a_set))));
    });

    group.finish();
}

criterion_group!(
    benches,
    build_scaling,
    extend_scaling,
    reachability_scaling,
    word_kernels
);
criterion_main!(benches);
