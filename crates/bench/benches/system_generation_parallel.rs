//! Sharded system generation and the shared knowledge cache.
//!
//! Measures [`SystemBuilder`] at 1 worker vs. all available cores (the
//! output is bit-identical either way, so this is a pure throughput
//! comparison), and the effect of reusing a [`KnowledgeCache`] across
//! evaluators instead of recomputing reachability from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_kripke::{Evaluator, Formula, KnowledgeCache, NonRigidSet};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::{GeneratedSystem, SystemBuilder};
use std::hint::black_box;
use std::thread;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario"),
        Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario"),
        Scenario::new(4, 1, FailureMode::Crash, 3).expect("valid scenario"),
    ]
}

fn system_generation(c: &mut Criterion) {
    let cores = thread::available_parallelism().map_or(1, |p| p.get());
    let mut group = c.benchmark_group("system_generation");
    group.sample_size(10);
    let thread_counts = if cores > 1 { vec![1, cores] } else { vec![1] };
    for scenario in scenarios() {
        for &threads in &thread_counts {
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), scenario),
                &scenario,
                |b, scenario| {
                    b.iter(|| {
                        black_box(
                            SystemBuilder::new(scenario)
                                .threads(threads)
                                .build()
                                .expect("bench scenarios fit the run capacity"),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn knowledge_cache_reuse(c: &mut Criterion) {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario");
    let system = GeneratedSystem::exhaustive(&scenario);
    let phi = Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty);
    let mut group = c.benchmark_group("knowledge_cache");
    group.bench_function("cold_evaluator", |b| {
        b.iter(|| {
            let mut eval = Evaluator::new(&system);
            black_box(eval.eval(&phi).count_ones())
        });
    });
    group.bench_function("shared_cache_evaluator", |b| {
        let cache = KnowledgeCache::new();
        Evaluator::with_cache(&system, cache.clone()).eval(&phi);
        b.iter(|| {
            let mut eval = Evaluator::with_cache(&system, cache.clone());
            black_box(eval.eval(&phi).count_ones())
        });
    });
    group.finish();
}

criterion_group!(benches, system_generation, knowledge_cache_reuse);
criterion_main!(benches);
