//! The domination preorder on protocols (Section 2.3).

use crate::FipDecisions;
use eba_model::ProcessorId;
use eba_sim::{GeneratedSystem, RunId};
use std::fmt;

/// The outcome of comparing two protocols' decisions run-by-run:
/// does `a` dominate `b`?
///
/// Following Section 2.3: `a` **dominates** `b` if every nonfaulty
/// processor that decides in a run of `b` also decides in the
/// corresponding run of `a`, at least as soon. `a` **strictly dominates**
/// `b` if additionally some nonfaulty processor decides sooner in some
/// run of `a` (deciding where `b` never decides counts as sooner).
#[derive(Clone, Debug)]
pub struct DominationReport {
    /// Whether `a` dominates `b`.
    pub dominates: bool,
    /// Whether `a` strictly dominates `b`.
    pub strict: bool,
    /// Pairs where `a` is strictly earlier (or decides where `b` does
    /// not).
    pub earlier: u64,
    /// Pairs where both decide at the same time.
    pub equal: u64,
    /// Pairs where `a` is later or missing a decision `b` makes —
    /// non-zero exactly when `dominates` is false.
    pub later: u64,
    /// The first violating `(run, processor)` witnessing non-domination.
    pub first_violation: Option<(RunId, ProcessorId)>,
    /// Sum over all compared pairs of `time_b − time_a` where both
    /// decide (total rounds saved by `a`).
    pub rounds_saved: i64,
    /// The largest single-pair improvement of `a` over `b` in rounds
    /// (only over pairs where both decide).
    pub max_gap: u16,
}

impl DominationReport {
    /// Whether the two protocols make decisions at identical times
    /// everywhere (each dominates the other).
    #[must_use]
    pub fn equivalent_times(&self) -> bool {
        self.dominates && !self.strict
    }
}

impl fmt::Display for DominationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dominates={} strict={} earlier={} equal={} later={} saved={} max-gap={}",
            self.dominates,
            self.strict,
            self.earlier,
            self.equal,
            self.later,
            self.rounds_saved,
            self.max_gap,
        )
    }
}

/// Compares two protocols over the same generated system: does `a`
/// dominate `b`?
///
/// Both [`FipDecisions`] must have been computed over `system` (runs are
/// matched by id, which *is* the corresponding-run relation since all
/// full-information protocols share the system).
///
/// # Panics
///
/// Panics if the decision tables do not match the system's dimensions.
///
/// # Example
///
/// ```
/// use eba_core::{dominates, DecisionPair, FipDecisions};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let never = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
/// // Every protocol dominates the never-deciding protocol…
/// let report = dominates(&system, &never, &never);
/// assert!(report.dominates && !report.strict);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dominates(system: &GeneratedSystem, a: &FipDecisions, b: &FipDecisions) -> DominationReport {
    assert_eq!(a.num_runs(), system.num_runs());
    assert_eq!(b.num_runs(), system.num_runs());
    assert_eq!(a.n(), system.n());
    assert_eq!(b.n(), system.n());

    let mut report = DominationReport {
        dominates: true,
        strict: false,
        earlier: 0,
        equal: 0,
        later: 0,
        first_violation: None,
        rounds_saved: 0,
        max_gap: 0,
    };

    for run in system.run_ids() {
        for p in system.nonfaulty(run) {
            match (a.decision_time(run, p), b.decision_time(run, p)) {
                (None, None) => {}
                (Some(_), None) => {
                    // `a` decides where `b` never does: strictly earlier.
                    report.earlier += 1;
                    report.strict = true;
                }
                (None, Some(_)) => {
                    report.later += 1;
                    if report.first_violation.is_none() {
                        report.first_violation = Some((run, p));
                    }
                    report.dominates = false;
                }
                (Some(ta), Some(tb)) => {
                    report.rounds_saved += i64::from(tb.ticks()) - i64::from(ta.ticks());
                    if ta < tb {
                        report.earlier += 1;
                        report.strict = true;
                        report.max_gap = report.max_gap.max(tb - ta);
                    } else if ta == tb {
                        report.equal += 1;
                    } else {
                        report.later += 1;
                        if report.first_violation.is_none() {
                            report.first_violation = Some((run, p));
                        }
                        report.dominates = false;
                    }
                }
            }
        }
    }

    report.strict &= report.dominates;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionPair;
    use eba_kripke::StateSets;
    use eba_model::{FailureMode, Scenario, Time};

    fn system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    /// Decide 1 (everything is vacuously consistent for this test) the
    /// first time the view's time reaches `at`.
    fn decide_one_at(system: &GeneratedSystem, at: u16) -> FipDecisions {
        let table = system.table();
        let mut one = StateSets::empty(3);
        for v in table.ids() {
            if table.time(v) >= Time::new(at) {
                one.insert(table.proc(v), v);
            }
        }
        FipDecisions::compute(
            system,
            &DecisionPair::new(StateSets::empty(3), one),
            format!("one@{at}"),
        )
    }

    #[test]
    fn earlier_strictly_dominates_later() {
        let system = system();
        let fast = decide_one_at(&system, 0);
        let slow = decide_one_at(&system, 2);
        let report = dominates(&system, &fast, &slow);
        assert!(report.dominates);
        assert!(report.strict);
        assert_eq!(report.later, 0);
        assert!(report.rounds_saved > 0);
        assert_eq!(report.max_gap, 2);

        let reverse = dominates(&system, &slow, &fast);
        assert!(!reverse.dominates);
        assert!(!reverse.strict);
        assert!(reverse.first_violation.is_some());
    }

    #[test]
    fn self_domination_is_non_strict() {
        let system = system();
        let d = decide_one_at(&system, 1);
        let report = dominates(&system, &d, &d);
        assert!(report.dominates && !report.strict);
        assert!(report.equivalent_times());
        assert_eq!(report.rounds_saved, 0);
    }

    #[test]
    fn deciding_where_other_never_does_is_strict() {
        let system = system();
        let some = decide_one_at(&system, 0);
        let never = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
        let report = dominates(&system, &some, &never);
        assert!(report.dominates && report.strict);
        let reverse = dominates(&system, &never, &some);
        assert!(!reverse.dominates);
    }

    #[test]
    fn crashed_processor_decisions_do_not_count() {
        // Frozen faulty processors never affect domination because the
        // comparison ranges over nonfaulty processors only. (Implicitly
        // exercised by every other test; here we check the counts are
        // bounded by nonfaulty populations.)
        let system = system();
        let a = decide_one_at(&system, 0);
        let b = decide_one_at(&system, 1);
        let report = dominates(&system, &a, &b);
        let population: u64 = system
            .run_ids()
            .map(|r| system.nonfaulty(r).len() as u64)
            .sum();
        assert_eq!(report.earlier + report.equal + report.later, population);
    }

    #[test]
    fn display_summarizes() {
        let system = system();
        let d = decide_one_at(&system, 1);
        let report = dominates(&system, &d, &d);
        assert!(report.to_string().contains("dominates=true"));
    }
}
