//! Verification of the Byzantine agreement properties (Section 2.1).

use crate::FipDecisions;
use eba_model::{ProcessorId, Value};
use eba_sim::{GeneratedSystem, RunId};
use std::fmt;

/// The result of verifying a protocol's decisions against the agreement
/// properties of Section 2.1, with counterexamples.
///
/// * *Decision*: every nonfaulty processor decides (within the horizon);
/// * *(Weak) agreement*: nonfaulty processors do not decide differently;
/// * *(Weak) validity*: if all initial values are `v`, nonfaulty
///   decisions are `v`;
/// * *Simultaneity* (SBA only): nonfaulty decisions share a time.
#[derive(Clone, Debug, Default)]
pub struct PropertyReport {
    /// Runs with a nonfaulty processor that never decides.
    pub decision_violations: Vec<(RunId, ProcessorId)>,
    /// Runs whose nonfaulty processors decide on different values.
    pub agreement_violations: Vec<RunId>,
    /// Runs violating weak validity.
    pub validity_violations: Vec<RunId>,
    /// Runs whose nonfaulty decisions are not simultaneous.
    pub simultaneity_violations: Vec<RunId>,
    /// Nonfaulty conflicts (states in both `Z_i` and `O_i`).
    pub nonfaulty_conflicts: usize,
    /// Number of runs examined.
    pub runs_checked: usize,
}

impl PropertyReport {
    /// Whether the decisions satisfy **weak agreement** and **weak
    /// validity** — i.e. the protocol is a *nontrivial agreement
    /// protocol* (Section 2.1, properties 2′ and 3′), with no conflicts.
    #[must_use]
    pub fn is_nontrivial_agreement(&self) -> bool {
        self.agreement_violations.is_empty()
            && self.validity_violations.is_empty()
            && self.nonfaulty_conflicts == 0
    }

    /// Whether the decisions satisfy full **EBA**: nontrivial agreement
    /// plus the decision property.
    #[must_use]
    pub fn is_eba(&self) -> bool {
        self.is_nontrivial_agreement() && self.decision_violations.is_empty()
    }

    /// Whether the decisions satisfy **SBA**: EBA plus simultaneity.
    #[must_use]
    pub fn is_sba(&self) -> bool {
        self.is_eba() && self.simultaneity_violations.is_empty()
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runs={} decision-viol={} agreement-viol={} validity-viol={} simult-viol={} conflicts={}",
            self.runs_checked,
            self.decision_violations.len(),
            self.agreement_violations.len(),
            self.validity_violations.len(),
            self.simultaneity_violations.len(),
            self.nonfaulty_conflicts,
        )
    }
}

/// Verifies the decisions of a protocol over every run of the system.
///
/// # Example
///
/// ```
/// use eba_core::{verify_properties, DecisionPair, FipDecisions};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// // The never-deciding protocol F^Λ is a nontrivial agreement protocol
/// // (vacuously) but not an EBA protocol.
/// let decisions = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
/// let report = verify_properties(&system, &decisions);
/// assert!(report.is_nontrivial_agreement());
/// assert!(!report.is_eba());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn verify_properties(system: &GeneratedSystem, decisions: &FipDecisions) -> PropertyReport {
    let mut report = PropertyReport {
        runs_checked: system.num_runs(),
        nonfaulty_conflicts: decisions.nonfaulty_conflicts(system).len(),
        ..PropertyReport::default()
    };

    for run in system.run_ids() {
        let record = system.run(run);
        let nonfaulty = record.nonfaulty;

        for p in nonfaulty {
            if decisions.decision(run, p).is_none() {
                report.decision_violations.push((run, p));
            }
        }

        let values = decisions.decided_values(run, nonfaulty);
        if values.len() > 1 {
            report.agreement_violations.push(run);
        }

        if record.config.all_same() {
            let v = record.config.value(ProcessorId::new(0));
            if values.iter().any(|&d| d != v) {
                report.validity_violations.push(run);
            }
        }

        let mut times = nonfaulty
            .iter()
            .filter_map(|p| decisions.decision_time(run, p));
        if let Some(first) = times.next() {
            let undecided_exists = nonfaulty
                .iter()
                .any(|p| decisions.decision(run, p).is_none());
            if undecided_exists || times.any(|t| t != first) {
                report.simultaneity_violations.push(run);
            }
        }
    }

    report
}

/// Validity as used in the strict EBA statement (property 3): when all
/// initial values are `v`, nonfaulty processors must actually decide `v`
/// (not merely avoid deciding otherwise). Returns the offending runs.
#[must_use]
pub fn strict_validity_violations(
    system: &GeneratedSystem,
    decisions: &FipDecisions,
) -> Vec<(RunId, ProcessorId)> {
    let mut out = Vec::new();
    for run in system.run_ids() {
        let record = system.run(run);
        if !record.config.all_same() {
            continue;
        }
        let v = record.config.value(ProcessorId::new(0));
        for p in record.nonfaulty {
            match decisions.decision(run, p) {
                Some(d) if d.value == v => {}
                _ => out.push((run, p)),
            }
        }
    }
    out
}

/// Counts, per decided value, how many nonfaulty decisions the protocol
/// makes across the system — a quick sanity profile used in experiment
/// output.
#[must_use]
pub fn decision_profile(system: &GeneratedSystem, decisions: &FipDecisions) -> (u64, u64, u64) {
    let (mut zeros, mut ones, mut undecided) = (0, 0, 0);
    for run in system.run_ids() {
        for p in system.nonfaulty(run) {
            match decisions.decision(run, p) {
                Some(d) if d.value == Value::Zero => zeros += 1,
                Some(_) => ones += 1,
                None => undecided += 1,
            }
        }
    }
    (zeros, ones, undecided)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionPair;
    use eba_kripke::StateSets;
    use eba_model::{FailureMode, Scenario};

    fn system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    fn own_value_pair(system: &GeneratedSystem) -> DecisionPair {
        let table = system.table();
        let mut zero = StateSets::empty(3);
        let mut one = StateSets::empty(3);
        for v in table.ids() {
            let owner = table.proc(v);
            match table.own_value(v) {
                Value::Zero => zero.insert(owner, v),
                Value::One => one.insert(owner, v),
            };
        }
        DecisionPair::new(zero, one)
    }

    #[test]
    fn never_deciding_is_nontrivial_but_not_eba() {
        let system = system();
        let d = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
        let report = verify_properties(&system, &d);
        assert!(report.is_nontrivial_agreement());
        assert!(!report.is_eba());
        assert!(!report.decision_violations.is_empty());
        // Simultaneity is vacuous when nobody decides.
        assert!(report.simultaneity_violations.is_empty());
    }

    #[test]
    fn own_value_decisions_violate_agreement() {
        let system = system();
        let d = FipDecisions::compute(&system, &own_value_pair(&system), "own-value");
        let report = verify_properties(&system, &d);
        // Deciding your own value satisfies decision & validity but not
        // agreement (mixed configurations disagree immediately).
        assert!(report.decision_violations.is_empty());
        assert!(report.validity_violations.is_empty());
        assert!(!report.agreement_violations.is_empty());
        assert!(!report.is_nontrivial_agreement());
        assert!(!report.is_sba());
    }

    #[test]
    fn strict_validity_catches_non_decision() {
        let system = system();
        let d = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
        let violations = strict_validity_violations(&system, &d);
        assert!(!violations.is_empty());
    }

    #[test]
    fn decision_profile_sums_match() {
        let system = system();
        let d = FipDecisions::compute(&system, &own_value_pair(&system), "own-value");
        let (zeros, ones, undecided) = decision_profile(&system, &d);
        assert_eq!(undecided, 0);
        let total: u64 = system
            .run_ids()
            .map(|r| system.nonfaulty(r).len() as u64)
            .sum();
        assert_eq!(zeros + ones, total);
    }

    #[test]
    fn display_summarizes() {
        let system = system();
        let d = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
        let report = verify_properties(&system, &d);
        assert!(report.to_string().contains("decision-viol="));
    }
}
