//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This shim implements the subset of the API the
//! workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement: a warm-up pass sizes the iteration count, then
//! `sample_size` samples are timed and the median per-iteration time is
//! reported on stdout.
//!
//! There is no statistical analysis, HTML report, or baseline comparison;
//! results are indicative, which is all the offline environment allows.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Cap on the total time spent per benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: BENCH_BUDGET,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the per-benchmark time budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(self.sample_size, self.measurement_time, &mut f);
        print_report(&name.into(), &report);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = budget;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_benchmark(self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        print_report(&format!("{}/{}", self.name, id), &report);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(self.sample_size, self.measurement_time, &mut f);
        print_report(&format!("{}/{}", self.name, id), &report);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id naming both a function and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id naming only a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(function), Some(parameter)) => write!(f, "{function}/{parameter}"),
            (Some(function), None) => write!(f, "{function}"),
            (None, Some(parameter)) => write!(f, "{parameter}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Passed to the closure of each benchmark; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's measurements.
struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters_per_sample: u64,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    budget: Duration,
    f: &mut F,
) -> Report {
    // Warm-up: time one iteration to size the samples.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let per_sample_budget = SAMPLE_TARGET
        .min(budget / (sample_size as u32).max(1))
        .max(Duration::from_micros(100));
    let iters_per_sample =
        (per_sample_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

    let started = Instant::now();
    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        if started.elapsed() > budget && samples_ns.len() >= 2 {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = samples_ns[samples_ns.len() / 2];
    Report {
        median_ns,
        min_ns: samples_ns[0],
        max_ns: *samples_ns.last().expect("at least one sample"),
        iters_per_sample,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn print_report(name: &str, report: &Report) {
    println!(
        "{name:<55} time: [{} {} {}]  ({} iters/sample)",
        format_ns(report.min_ns),
        format_ns(report.median_ns),
        format_ns(report.max_ns),
        report.iters_per_sample,
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::from_parameter("sum"), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
