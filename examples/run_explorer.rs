//! Run explorer: watch knowledge build up round by round.
//!
//! Picks a handful of instructive runs and prints, for each, the timeline
//! of the knowledge conditions the paper's decision rules test — from
//! plain belief `B^N_i ∃0`, through common knowledge `C_N ∃0`, to the
//! continual common knowledge `C□_{N∧O} ∃0` that gates the optimal
//! decide-0 rule.
//!
//! ```text
//! cargo run --example run_explorer
//! ```

use eba::prelude::*;
use eba_core::protocols::f_lambda_2;
use eba_kripke::explain::Timeline;
use eba_model::sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);

    // The optimal protocol's decision sets, so we can display its exact
    // gating conditions.
    let pair = f_lambda_2(&mut ctor);
    let (z_id, o_id) = {
        let eval = ctor.evaluator();
        (
            eval.register_state_sets(pair.zero().clone()),
            eval.register_state_sets(pair.one().clone()),
        )
    };

    let p2 = ProcessorId::new(1);
    let formulas: Vec<(String, Formula)> = vec![
        ("∃0".into(), Formula::exists(Value::Zero)),
        (
            "B^N_p2 ∃0".into(),
            Formula::exists(Value::Zero).believed_by(p2, NonRigidSet::Nonfaulty),
        ),
        (
            "E_N ∃0".into(),
            Formula::exists(Value::Zero).everyone(NonRigidSet::Nonfaulty),
        ),
        (
            "C_N ∃0".into(),
            Formula::exists(Value::Zero).common(NonRigidSet::Nonfaulty),
        ),
        (
            "C□_{N∧O} ∃0".into(),
            Formula::exists(Value::Zero).continual_common(NonRigidSet::NonfaultyAnd(o_id)),
        ),
        ("p2 decides 0".into(), Formula::StateIn(p2, z_id)),
        ("p2 decides 1".into(), Formula::StateIn(p2, o_id)),
    ];

    let show = |ctor: &mut Constructor<'_>,
                title: &str,
                config: InitialConfig,
                pattern: FailurePattern| {
        let run = ctor
            .system()
            .find_run(&config, &pattern)
            .expect("run exists");
        println!("— {title}: {config} under [{pattern}]");
        let timeline = Timeline::build(ctor.evaluator(), run, &formulas);
        println!("{timeline}");
    };

    show(
        &mut ctor,
        "failure-free with one 0",
        InitialConfig::from_bits(3, 0b110),
        FailurePattern::failure_free(3),
    );
    show(
        &mut ctor,
        "all ones, failure-free",
        InitialConfig::uniform(3, Value::One),
        FailurePattern::failure_free(3),
    );
    show(
        &mut ctor,
        "the 0-holder dies silently",
        InitialConfig::from_bits(3, 0b110),
        sample::silent_processor(&scenario, ProcessorId::new(0)),
    );
    show(
        &mut ctor,
        "the 0-holder whispers to p2, then dies",
        InitialConfig::from_bits(3, 0b110),
        FailurePattern::failure_free(3).with_behavior(
            ProcessorId::new(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::singleton(p2),
            },
        ),
    );

    Ok(())
}
