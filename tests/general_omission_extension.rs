//! Extension beyond the paper: *general omission* failures (\[PT86\]),
//! where faulty processors may fail to receive as well as to send. The
//! paper excludes this mode (Section 2.1) but notes its techniques should
//! extend; Section 7 claims the knowledge-level analysis is largely
//! mode-independent. We test exactly that:
//!
//! * the knowledge-level machinery (Prop 5.1, Thm 5.2, Thm 5.3, the
//!   operator axioms) carries over verbatim;
//! * the knowledge-level 0-chain protocol `FIP(Z⁰, O⁰)` remains a correct
//!   EBA protocol with the `f + 1` bound;
//! * the **message-level** `ChainOmission` protocol breaks: its fault
//!   accusations are an unsound approximation of `B^N_i(j ∉ N)` once
//!   receive omissions exist (a faulty receiver honestly accuses a
//!   nonfaulty sender), and we exhibit an explicit agreement violation.

use eba::prelude::*;
use eba_core::protocols::{f_lambda_2, zero_chain_pair};
use eba_kripke::axioms;
use eba_protocols::ChainOmission;
use eba_sim::execute_unchecked as execute;

fn general_omission_system() -> GeneratedSystem {
    let scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
    GeneratedSystem::exhaustive(&scenario)
}

#[test]
fn theorem_5_2_and_5_3_extend_to_general_omission() {
    let system = general_omission_system();
    let mut ctor = Constructor::new(&system);
    let f2 = ctor.optimize(&DecisionPair::empty(3));
    let d = FipDecisions::compute(&system, &f2, "F^{Λ,2}");
    let report = verify_properties(&system, &d);
    assert!(report.is_nontrivial_agreement(), "{report}");
    assert!(
        check_optimality(&mut ctor, &f2).is_optimal(),
        "Theorem 5.3 characterization failed in general-omission mode"
    );
}

#[test]
fn knowledge_axioms_extend_to_general_omission() {
    let system = general_omission_system();
    let mut eval = Evaluator::new(&system);
    let phi = Formula::exists(Value::Zero);
    let psi = Formula::exists(Value::One);
    for i in 0..3 {
        for report in axioms::check_s5(&mut eval, ProcessorId::new(i), &phi, &psi) {
            assert!(report.holds(), "{}: {:?}", report.name, report.violation);
        }
    }
    for report in axioms::check_continual_common(&mut eval, NonRigidSet::Nonfaulty, &phi, &psi) {
        assert!(report.holds(), "{}: {:?}", report.name, report.violation);
    }
}

#[test]
fn knowledge_level_chain_protocol_survives_general_omission() {
    let system = general_omission_system();
    let mut ctor = Constructor::new(&system);
    let pair = zero_chain_pair(&mut ctor);
    let d = FipDecisions::compute(&system, &pair, "FIP(Z⁰,O⁰)");
    let report = verify_properties(&system, &d);
    assert!(report.is_eba(), "{report}");
    for run in system.run_ids() {
        let f = system.run(run).pattern.num_faulty() as u16;
        for p in system.nonfaulty(run) {
            let t = d.decision_time(run, p).expect("EBA decides");
            assert!(t.ticks() <= f + 1, "f+1 bound broken at {p}, f = {f}");
        }
    }
}

#[test]
fn f_lambda_2_still_fails_decision_in_general_omission() {
    // General omission subsumes sending omission, so Proposition 6.3's
    // non-decision carries over a fortiori; check the witness on the
    // smallest extension system that admits it is out of reach here
    // (t > 1 explodes), but non-EBA behavior already shows at the
    // property level via undecided runs? At t = 1 the mode actually
    // admits decisions everywhere (like sending omission at t = 1, where
    // F^{Λ,2} decides in this small system); assert the protocol is at
    // least a nontrivial agreement protocol and leave the t ≥ 2 witness
    // to the sending-omission test, whose runs embed into this mode.
    let system = general_omission_system();
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let d = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
    assert!(verify_properties(&system, &d).is_nontrivial_agreement());
}

/// The explicit witness that message-level fault accusations are unsound
/// under general omission (n = 4, t = 2):
///
/// * `p3` (index 2) holds the only 0 and is send-omission faulty: its
///   round-1 chain goes only to `p2` (index 1) and it is silent after;
/// * `p1` (index 0) is general-omission faulty: it fails to *receive*
///   from the nonfaulty `p2` in rounds 1–2, honestly-but-wrongly marks
///   `p2` faulty, and broadcasts that accusation;
/// * `p4` (index 3), nonfaulty, adopts the accusation in round 2 and
///   therefore rejects `p2`'s relayed 0-chain `[p3, p2]` — then sees a
///   quiet round and decides 1, while the nonfaulty `p2` decided 0.
#[test]
fn message_level_accusations_break_under_general_omission() {
    let n = 4;
    let scenario = Scenario::new(n, 2, FailureMode::GeneralOmission, 4).unwrap();
    let p = ProcessorId::new;
    let others = |i: usize| ProcSet::full(n) - ProcSet::singleton(p(i));

    let config = InitialConfig::from_bits(n, 0b1011); // only p3 (index 2) holds 0
    let pattern = FailurePattern::failure_free(n)
        .with_behavior(
            p(2),
            FaultyBehavior::Omission {
                omissions: vec![
                    others(2) - ProcSet::singleton(p(1)), // round 1: only p2 hears
                    others(2),
                    others(2),
                    others(2),
                ],
            },
        )
        .with_behavior(
            p(0),
            FaultyBehavior::GeneralOmission {
                send: vec![ProcSet::empty(); 4],
                receive: vec![
                    ProcSet::singleton(p(1)), // fails to receive from p2
                    ProcSet::singleton(p(1)),
                    ProcSet::empty(),
                    ProcSet::empty(),
                ],
            },
        );
    scenario.validate_pattern(&pattern).unwrap();

    let trace = execute(
        &ChainOmission::new(n),
        &config,
        &pattern,
        scenario.horizon(),
    );
    // The nonfaulty p2 accepted the chain and decided 0 …
    assert_eq!(trace.decided_value(p(1)), Some(Value::Zero));
    // … while the poisoned accusation drives the nonfaulty p4 to 1.
    assert_eq!(trace.decided_value(p(3)), Some(Value::One));
    assert!(
        !trace.satisfies_weak_agreement(),
        "expected the documented agreement violation under general omission"
    );
}

/// The same protocol remains safe when the general-omission adversary is
/// restricted to sending omissions — confirming the break is specifically
/// the receive-omission unsoundness.
#[test]
fn chain_protocol_safe_when_receive_omissions_absent() {
    use eba_model::enumerate;
    let scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 3).unwrap();
    let protocol = ChainOmission::new(3);
    for pattern in enumerate::patterns(&scenario) {
        // Filter to patterns whose receive sides are empty.
        let receive_free = ProcessorId::all(3).all(|q| match pattern.behavior(q) {
            Some(FaultyBehavior::GeneralOmission { receive, .. }) => {
                receive.iter().all(|s| s.is_empty())
            }
            _ => true,
        });
        if !receive_free {
            continue;
        }
        for config in InitialConfig::enumerate_all(3) {
            let trace = execute(&protocol, &config, &pattern, scenario.horizon());
            assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
            assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
        }
    }
}
