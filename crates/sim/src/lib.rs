//! Synchronous round-based simulator and full-information view machinery.
//!
//! This crate provides the execution substrate of the reproduction:
//!
//! * [`Protocol`] — the paper's notion of a protocol (Section 2.3): a
//!   message-generation function, a state-transition function, and an
//!   output function, all deterministic;
//! * [`execute`] / [`Trace`] — running a protocol against an initial
//!   configuration and a failure pattern, producing the full run;
//! * [`ViewTable`] / [`ViewId`] — hash-consed *full-information views*
//!   (Section 2.4): the local states of processors running the
//!   full-information protocol, shared across runs so that two points have
//!   equal `ViewId` exactly when the processor has the same FIP local
//!   state at both;
//! * [`GeneratedSystem`] — the set of runs of the full-information
//!   protocol for a scenario (exhaustive or sampled), the object on which
//!   all knowledge tests are evaluated;
//! * [`SystemBuilder`] — staged, shard-parallel exhaustive generation
//!   whose output is bit-identical for every thread/shard count;
//! * [`PointStore`] — the columnar (struct-of-arrays) point store built
//!   alongside every system: per-processor view columns and CSR bucket
//!   partitions that back the compiled evaluation plans of `eba-kripke`;
//! * [`Exchange`] / [`AnyExchange`] — the information-exchange
//!   abstraction (DESIGN.md §4g): the builder simulates whichever
//!   exchange the scenario declares; [`DigestExchange`] is the bounded
//!   who-heard-what alternative to full information;
//! * [`chaos`] — fault injection, `catch_unwind` worker supervision with
//!   retry and sequential fallback, and adversarial failure schedules;
//!   with [`eba_model::RunBudget`] this is the robustness substrate of
//!   the engine (DESIGN.md §4c).
//!
//! # Example
//!
//! ```
//! use eba_model::{FailureMode, Scenario};
//! use eba_sim::GeneratedSystem;
//!
//! # fn main() -> Result<(), eba_model::ModelError> {
//! let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
//! let system = GeneratedSystem::exhaustive(&scenario);
//! assert!(system.num_runs() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod exchange;
mod executor;
mod full_info;
mod points;
mod protocol;
mod system;
mod trace;
mod view;

pub mod chaos;
pub mod sched;
pub mod stats;
pub mod symmetry;

pub use builder::{BuildOutcome, BuildReport, ExtendReport, SystemBuilder, RUN_CAPACITY};
pub use exchange::{
    try_exchange_views, AnyExchange, DigestExchange, DigestState, Exchange, FullInfoExchange,
    CONTACT_WINDOW,
};
pub use executor::{execute, execute_unchecked, ExecError};
pub use full_info::{FullInformation, View};
pub use points::PointStore;
pub use protocol::Protocol;
pub use sched::{scheduler_stats, SchedulerStats};
pub use system::{GeneratedSystem, RunId, RunRecord};
pub use trace::{Decision, Trace};
pub use view::{fip_views, try_fip_views, ViewId, ViewNode, ViewTable, VIEW_CAPACITY};
