//! Theorem 6.2: in the crash failure mode, nonfaulty processors make the
//! same decisions at corresponding points of the message-level `P0opt`
//! and the knowledge-level optimum `F^{Λ,2}`.
//!
//! This is the paper's bridge between the abstract characterization and a
//! protocol with linear-size messages — checked here exhaustively over
//! every run of several small scenarios.

use eba::prelude::*;
use eba_core::protocols::f_lambda_2;
use eba_protocols::P0Opt;
use eba_sim::execute_unchecked as execute;

/// Executes P0opt on every run of `system` and compares every nonfaulty
/// processor's (value, time) decision with the `F^{Λ,2}` decisions.
fn check_correspondence(n: usize, t: usize, horizon: u16) {
    let scenario = Scenario::new(n, t, FailureMode::Crash, horizon).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let knowledge = FipDecisions::compute(&system, &pair, "F^{Λ,2}");

    let protocol = P0Opt::new(t);
    let mut compared = 0u64;
    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute(
            &protocol,
            &record.config,
            &record.pattern,
            scenario.horizon(),
        );
        for p in record.nonfaulty {
            let message_level = trace.decision(p);
            let knowledge_level = knowledge.decision(run, p);
            assert_eq!(
                message_level,
                knowledge_level,
                "divergence at run {} ({} / {}), {p}",
                run.index(),
                record.config,
                record.pattern,
            );
            compared += 1;
        }
    }
    assert!(compared > 0);
}

#[test]
fn correspondence_n3_t1() {
    check_correspondence(3, 1, 3);
}

#[test]
fn correspondence_n4_t1() {
    check_correspondence(4, 1, 3);
}

#[test]
fn correspondence_n5_t1() {
    check_correspondence(5, 1, 3);
}

/// **Reproduction finding.** For `t ≥ 2` the exact point-for-point
/// equivalence of Theorem 6.2 fails: with two processors crashing in the
/// *same* round — one delivering only to `i`, the other silent — `i`'s
/// full-information view at time 2 already proves the hidden 0 can never
/// reach a nonfaulty processor, so `F^{Λ,2}` decides 1 at time 2, while
/// `P0opt`'s rule (b) needs a third round of stable heard-from sets.
/// (The appendix's chain construction threads all vanishing processors
/// through a single chain and does not cover two unrelated same-round
/// crashers.) What survives — and is asserted here — is the *domination*
/// direction: `F^{Λ,2}` decides no later than `P0opt` everywhere, and in
/// the witness run strictly earlier.
#[test]
#[ignore = "n=4, t=2 exhausts ~100k runs; run with --ignored (covered by exp3)"]
fn f_lambda_2_strictly_dominates_p0opt_at_t2() {
    let scenario = Scenario::new(4, 2, FailureMode::Crash, 4).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let knowledge = FipDecisions::compute(&system, &pair, "F^{Λ,2}");

    let protocol = P0Opt::new(2);
    let mut strictly_earlier = 0u64;
    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute(
            &protocol,
            &record.config,
            &record.pattern,
            scenario.horizon(),
        );
        for p in record.nonfaulty {
            let message_time = trace.decision_time(p);
            let knowledge_time = knowledge.decision_time(run, p);
            match (knowledge_time, message_time) {
                (Some(tk), Some(tm)) => {
                    assert!(
                        tk <= tm,
                        "F^{{Λ,2}} later than P0opt at run {} ({} / {}), {p}",
                        run.index(),
                        record.config,
                        record.pattern,
                    );
                    strictly_earlier += u64::from(tk < tm);
                }
                (None, Some(_)) => panic!("F^{{Λ,2}} undecided where P0opt decides"),
                (Some(_), None) => strictly_earlier += 1,
                (None, None) => {}
            }
        }
    }
    assert!(
        strictly_earlier > 0,
        "expected the documented t ≥ 2 divergence"
    );
}

/// The `n ≥ t + 2` assumption of Theorem 6.2 is necessary: at `n = t + 1`
/// a processor can observe that *all* other processors are faulty (it
/// hears from nobody in round 1), at which point the knowledge-level
/// optimum already knows no nonfaulty processor will ever learn of a 0
/// and decides 1 at time 1 — one round before `P0opt`'s two-quiet-rounds
/// rule (b) can fire. Witness: n = 3, t = 2, configuration ⟨0,0,1⟩, both
/// 0-holders crash silently in round 1.
#[test]
fn correspondence_fails_without_n_ge_t_plus_2() {
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 4).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let knowledge = FipDecisions::compute(&system, &pair, "F^{Λ,2}");

    let p3 = ProcessorId::new(2);
    let config = InitialConfig::from_bits(3, 0b100);
    let pattern = FailurePattern::failure_free(3)
        .with_behavior(
            ProcessorId::new(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        )
        .with_behavior(
            ProcessorId::new(1),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
    let run = system.find_run(&config, &pattern).unwrap();

    let trace = execute(&P0Opt::new(2), &config, &pattern, scenario.horizon());
    let knowledge_time = knowledge.decision_time(run, p3).unwrap();
    let message_time = trace.decision_time(p3).unwrap();
    assert_eq!(knowledge_time, Time::new(1));
    assert_eq!(message_time, Time::new(2));
}

/// Theorem 6.2's other half: both protocols are optimal EBA protocols —
/// `F^{Λ,2}` passes the Theorem 5.3 characterization and `P0opt` (being
/// decision-equivalent) therefore does too.
#[test]
fn f_lambda_2_is_an_optimal_eba_protocol() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let decisions = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
    assert!(verify_properties(&system, &decisions).is_eba());
    assert!(check_optimality(&mut ctor, &pair).is_optimal());
}
