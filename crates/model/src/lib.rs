//! Model vocabulary for the eventual-Byzantine-agreement (EBA) reproduction.
//!
//! This crate defines the shared, dependency-light vocabulary used by every
//! other crate in the workspace:
//!
//! * [`ProcessorId`], [`ProcSet`] — processor identities and sets thereof;
//! * [`Value`] — the binary agreement values of the paper (`V = {0, 1}`);
//! * [`Time`] and [`Round`] — the synchronous global clock (round `k` takes
//!   place between time `k − 1` and time `k`);
//! * [`InitialConfig`] — the system's initial configuration (one initial
//!   value per processor);
//! * [`FailureMode`], [`FaultyBehavior`], [`FailurePattern`] — crash and
//!   sending-omission failures, exactly as defined in Section 2.1 of the
//!   paper;
//! * [`Scenario`] — a fully-specified finite instance `(n, t, mode, horizon)`
//!   of the model;
//! * exhaustive pattern/configuration enumerators ([`enumerate`]) and seeded
//!   random samplers ([`sample`]).
//!
//! # Modeling conventions
//!
//! A *failure pattern* assigns a faulty behavior to every processor that
//! fails in the run. Following the usage of the paper (and of \[MT88\]), the
//! set of faulty processors is chosen by the adversary up front and a faulty
//! processor **may exhibit no deviation inside the finite horizon** — this
//! represents a processor that fails only after the horizon, and is
//! essential for the knowledge analysis: observing correct behavior from `j`
//! never lets `i` conclude that `j` is nonfaulty.
//!
//! A processor is *nonfaulty in a run* iff it does not appear in the run's
//! failure pattern (the paper's convention: nonfaulty throughout the run).
//!
//! # Example
//!
//! ```
//! use eba_model::{Scenario, FailureMode, InitialConfig, Value};
//!
//! # fn main() -> Result<(), eba_model::ModelError> {
//! let scenario = Scenario::new(4, 1, FailureMode::Crash, 3)?;
//! assert_eq!(scenario.n(), 4);
//! let config = InitialConfig::uniform(scenario.n(), Value::One);
//! assert!(config.all_same());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod config;
mod error;
mod exchange;
mod failure;
mod ids;
mod procset;
mod scenario;
mod space;
mod time;
mod value;

pub mod enumerate;
pub mod fasthash;
pub mod sample;
pub mod symmetry;

pub use budget::{ArmedBudget, BudgetHit, RunBudget};
pub use config::InitialConfig;
pub use error::ModelError;
pub use exchange::{ExchangeKind, MAX_DIGEST_BITS};
pub use failure::{FailureMode, FailurePattern, FaultyBehavior};
pub use ids::{PointId, ProcessorId, POINT_CAPACITY};
pub use procset::{subsets as procset_subsets, ProcSet, Subsets};
pub use scenario::{HorizonDelta, Scenario};
pub use space::{ScenarioSpace, Shard, ShardPatterns};
pub use time::{Round, Time};
pub use value::Value;
