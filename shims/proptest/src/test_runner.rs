//! Test configuration, deterministic RNG, and failure reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving strategy generation.
///
/// Seeded from the test's module path + name and the case index, so every
/// run of the suite generates the same inputs (no persistence file
/// needed) while distinct tests see distinct streams.
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for one case of one property.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform value in `[0, span)`; `span` must be positive and at most
    /// `2^64` unless exactly representable by doubling draws.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u128) -> u128 {
        assert!(span > 0, "below: empty span");
        if span > 1 << 64 {
            // Compose two draws; slight modulo bias is acceptable for
            // test-input generation.
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            return wide % span;
        }
        if span == 1 << 64 {
            return u128::from(self.next_u64());
        }
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let raw = self.next_u64();
            let wide = u128::from(raw) * u128::from(span64);
            if (wide as u64) <= zone {
                return wide >> 64;
            }
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold; the message explains why.
    Fail(String),
    /// The input was rejected (accepted for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given message.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "{message}"),
            TestCaseError::Reject(message) => write!(f, "input rejected: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let draw = |name: &str, case| {
            let mut rng = TestRng::for_case(name, case);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw("a::b", 0), draw("a::b", 0));
        assert_ne!(draw("a::b", 0), draw("a::b", 1));
        assert_ne!(draw("a::b", 0), draw("a::c", 0));
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_case("below", 0);
        for span in [
            1u128,
            2,
            3,
            255,
            1 << 8,
            (1 << 64) - 1,
            1 << 64,
            (1 << 64) + 5,
        ] {
            for _ in 0..100 {
                assert!(rng.below(span) < span);
            }
        }
    }

    #[test]
    fn errors_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
        assert!(TestCaseError::reject("nope").to_string().contains("nope"));
    }
}
