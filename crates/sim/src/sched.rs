//! Work-stealing scheduler behind the supervised worker pools
//! (DESIGN.md §4j).
//!
//! [`chaos::supervised_indexed`](crate::chaos::supervised_indexed) used to
//! hand item `i` to worker `i % workers` statically, so a single slow item
//! idled every other core for the tail of the stage. This module replaces
//! that assignment with a classic injector/deque work-stealing design on
//! `std` primitives only:
//!
//! * a shared **injector** holds the item index space pre-split into
//!   contiguous chunks;
//! * each worker owns a **deque** of chunks; it pops items from the front
//!   of its own deque and refills from the injector when dry;
//! * an idle worker **steals half** of a victim's deque from the back
//!   (splitting the victim's last chunk in two when only one remains), so
//!   the items nearest a busy worker's "hands" stay with it.
//!
//! Scheduling affects only *which thread* computes an item, never the
//! result: items are pure functions of their index, results are scattered
//! into index-keyed slots, and chaos faults key on the item index — so
//! every schedule is observationally identical to the sequential one.
//!
//! The module also keeps a process-wide [`SchedulerStats`] accumulator
//! (pool runs, items, steals, and the per-worker item counts and busy
//! spans of the most recent parallel run) surfaced through the CLI's
//! `--cache-stats` flag and the `eba-serve` `stats` verb, so load-balance
//! claims are observable rather than asserted.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The injector plus per-worker deques for one pool run over the item
/// index space `0..count`.
pub(crate) struct WorkQueues {
    injector: Mutex<VecDeque<Range<usize>>>,
    locals: Vec<Mutex<VecDeque<Range<usize>>>>,
    steals: AtomicU64,
}

/// Chunks per worker seeded into the injector. More chunks mean finer
/// stealing granularity at slightly more queue traffic; four per worker
/// matches the builder's shard oversubscription factor.
const CHUNKS_PER_WORKER: usize = 4;

impl WorkQueues {
    /// Splits `0..count` into contiguous chunks on the shared injector.
    pub(crate) fn new(count: usize, workers: usize) -> Self {
        let chunks = (workers * CHUNKS_PER_WORKER).clamp(1, count.max(1));
        let chunk = count.div_ceil(chunks).max(1);
        let mut injector = VecDeque::new();
        let mut start = 0;
        while start < count {
            let end = (start + chunk).min(count);
            injector.push_back(start..end);
            start = end;
        }
        WorkQueues {
            injector: Mutex::new(injector),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Claims the next item for `worker`: front of its own deque, then a
    /// chunk from the injector, then half of a victim's deque. Returns
    /// `None` when no unclaimed work is visible anywhere — the pool run
    /// is draining and the worker can retire.
    pub(crate) fn next(&self, worker: usize) -> Option<usize> {
        loop {
            if let Some(index) = self.pop_own(worker) {
                return Some(index);
            }
            if let Some(range) = self.injector.lock().expect("injector poisoned").pop_front() {
                self.push_own(worker, range);
                continue;
            }
            if !self.steal_into(worker) {
                return None;
            }
        }
    }

    /// Total successful steals of this run.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn pop_own(&self, worker: usize) -> Option<usize> {
        let mut local = self.locals[worker].lock().expect("deque poisoned");
        let front = local.pop_front()?;
        if front.start + 1 < front.end {
            local.push_front(front.start + 1..front.end);
        }
        Some(front.start)
    }

    fn push_own(&self, worker: usize, range: Range<usize>) {
        self.locals[worker]
            .lock()
            .expect("deque poisoned")
            .push_back(range);
    }

    /// Steals half of the first non-empty victim's deque (from the back,
    /// so the victim keeps the items it is about to execute). When the
    /// victim holds a single multi-item chunk, that chunk is split and
    /// the upper half taken. Returns whether anything was stolen.
    fn steal_into(&self, thief: usize) -> bool {
        let workers = self.locals.len();
        for offset in 1..workers {
            let victim = (thief + offset) % workers;
            let mut loot: VecDeque<Range<usize>> = VecDeque::new();
            {
                let mut deque = self.locals[victim].lock().expect("deque poisoned");
                match deque.len() {
                    0 => continue,
                    1 => {
                        let only = deque.pop_front().expect("non-empty deque");
                        let mid = only.start + (only.end - only.start) / 2;
                        if mid > only.start {
                            deque.push_front(only.start..mid);
                            loot.push_back(mid..only.end);
                        } else {
                            // A single-item chunk is not worth a steal;
                            // give it back and try the next victim.
                            deque.push_front(only);
                            continue;
                        }
                    }
                    len => {
                        for _ in 0..len.div_ceil(2) {
                            let back = deque.pop_back().expect("non-empty deque");
                            loot.push_front(back);
                        }
                    }
                }
            }
            let mut own = self.locals[thief].lock().expect("deque poisoned");
            own.extend(loot);
            drop(own);
            self.steals.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

// Process-wide accumulator. Pool runs from every supervised stage
// (builder shards, reachability workers, campaign shards, extend blocks)
// fold into the same counters; the `last_*` fields describe the most
// recent parallel run only.
static POOL_RUNS: AtomicU64 = AtomicU64::new(0);
static ITEMS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static LAST_WORKERS: AtomicU64 = AtomicU64::new(0);
static LAST_ITEMS_MAX: AtomicU64 = AtomicU64::new(0);
static LAST_ITEMS_MIN: AtomicU64 = AtomicU64::new(0);
static LAST_SPAN_MAX_US: AtomicU64 = AtomicU64::new(0);
static LAST_SPAN_MIN_US: AtomicU64 = AtomicU64::new(0);

/// Folds one finished parallel pool run into the process-wide stats.
pub(crate) fn record_run(per_worker_items: &[usize], spans: &[Duration], steals: u64) {
    let items: usize = per_worker_items.iter().sum();
    POOL_RUNS.fetch_add(1, Ordering::Relaxed);
    ITEMS_EXECUTED.fetch_add(items as u64, Ordering::Relaxed);
    STEALS.fetch_add(steals, Ordering::Relaxed);
    LAST_WORKERS.store(per_worker_items.len() as u64, Ordering::Relaxed);
    let max_items = per_worker_items.iter().copied().max().unwrap_or(0);
    let min_items = per_worker_items.iter().copied().min().unwrap_or(0);
    LAST_ITEMS_MAX.store(max_items as u64, Ordering::Relaxed);
    LAST_ITEMS_MIN.store(min_items as u64, Ordering::Relaxed);
    let max_span = spans.iter().copied().max().unwrap_or(Duration::ZERO);
    let min_span = spans.iter().copied().min().unwrap_or(Duration::ZERO);
    LAST_SPAN_MAX_US.store(max_span.as_micros() as u64, Ordering::Relaxed);
    LAST_SPAN_MIN_US.store(min_span.as_micros() as u64, Ordering::Relaxed);
}

/// A snapshot of the process-wide work-stealing scheduler counters.
///
/// `pools`, `items` and `steals` accumulate over every parallel pool run
/// since process start; the `last_*` fields describe the most recent run
/// (its worker count, the busiest/idlest workers' item counts, and their
/// busy wall-time spans in microseconds — the straggler gap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Parallel pool runs completed.
    pub pools: u64,
    /// Items executed across all parallel pool runs.
    pub items: u64,
    /// Successful steals across all parallel pool runs.
    pub steals: u64,
    /// Worker count of the most recent parallel run.
    pub last_workers: u64,
    /// Most items executed by one worker in the most recent run.
    pub last_items_max: u64,
    /// Fewest items executed by one worker in the most recent run.
    pub last_items_min: u64,
    /// Longest per-worker busy span of the most recent run, in µs.
    pub last_span_max_us: u64,
    /// Shortest per-worker busy span of the most recent run, in µs.
    pub last_span_min_us: u64,
}

/// Reads the current process-wide scheduler counters.
pub fn scheduler_stats() -> SchedulerStats {
    SchedulerStats {
        pools: POOL_RUNS.load(Ordering::Relaxed),
        items: ITEMS_EXECUTED.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        last_workers: LAST_WORKERS.load(Ordering::Relaxed),
        last_items_max: LAST_ITEMS_MAX.load(Ordering::Relaxed),
        last_items_min: LAST_ITEMS_MIN.load(Ordering::Relaxed),
        last_span_max_us: LAST_SPAN_MAX_US.load(Ordering::Relaxed),
        last_span_min_us: LAST_SPAN_MIN_US.load(Ordering::Relaxed),
    }
}

impl std::fmt::Display for SchedulerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pools == 0 {
            return write!(f, "no parallel pool runs");
        }
        write!(
            f,
            "{} pools / {} items / {} steals; last run: {} workers, \
             items max {} / min {}, span max {}µs / min {}µs",
            self.pools,
            self.items,
            self.steals,
            self.last_workers,
            self.last_items_max,
            self.last_items_min,
            self.last_span_max_us,
            self.last_span_min_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    /// Draining the queues from one worker yields every index once.
    #[test]
    fn single_worker_drains_every_index_in_order() {
        let queues = WorkQueues::new(37, 1);
        let mut seen = Vec::new();
        while let Some(i) = queues.next(0) {
            seen.push(i);
        }
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
        assert_eq!(queues.steals(), 0);
    }

    /// Concurrent workers claim every index exactly once, whatever the
    /// interleaving; steals move work without duplicating or losing it.
    #[test]
    fn concurrent_workers_partition_the_index_space() {
        for workers in [2, 3, 8] {
            let count = 101;
            let queues = WorkQueues::new(count, workers);
            let claimed: Vec<Vec<usize>> = thread::scope(|scope| {
                let queues = &queues;
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut mine = Vec::new();
                            while let Some(i) = queues.next(w) {
                                mine.push(i);
                            }
                            mine
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let all: Vec<usize> = claimed.into_iter().flatten().collect();
            let unique: BTreeSet<usize> = all.iter().copied().collect();
            assert_eq!(all.len(), count, "workers={workers}: duplicated claims");
            assert_eq!(unique.len(), count, "workers={workers}: lost claims");
            assert_eq!(unique.iter().next_back(), Some(&(count - 1)));
        }
    }

    /// A stalled worker's pending chunk items get stolen. Worker 0
    /// claims one item and parks until every thief retires; thieves can
    /// only retire once worker 0's deque is down to a single-item chunk
    /// (single-item chunks are not worth a steal), so on resume the
    /// stalled worker drains at most one leftover item — the rest of its
    /// chunk was stolen while it stalled.
    #[test]
    fn idle_workers_steal_from_a_stalled_victim() {
        let count = 64;
        let queues = WorkQueues::new(count, 4);
        let retired = AtomicUsize::new(0);
        let (stalled, others) = thread::scope(|scope| {
            let queues = &queues;
            let retired = &retired;
            let victim = scope.spawn(move || {
                let mut mine = 0usize;
                if queues.next(0).is_some() {
                    mine += 1;
                }
                while retired.load(Ordering::SeqCst) < 3 {
                    thread::yield_now();
                }
                while queues.next(0).is_some() {
                    mine += 1;
                }
                mine
            });
            let thieves: Vec<_> = (1..4)
                .map(|w| {
                    scope.spawn(move || {
                        let mut mine = 0usize;
                        while queues.next(w).is_some() {
                            mine += 1;
                        }
                        retired.fetch_add(1, Ordering::SeqCst);
                        mine
                    })
                })
                .collect();
            let others: usize = thieves.into_iter().map(|h| h.join().unwrap()).sum();
            (victim.join().unwrap(), others)
        });
        assert_eq!(stalled + others, count, "every item claimed exactly once");
        assert!(queues.steals() >= 1, "the stalled deque must be robbed");
        assert!(
            stalled <= 2,
            "worker 0 kept {stalled} items; thieves should have taken its chunk"
        );
    }
}
