//! Section 6.2: the terminating omission-mode protocol `FIP(Z⁰, O⁰)`,
//! its optimization `F*`, and the Lemma A.10/A.11 simplifications.

use eba::prelude::*;
use eba_core::protocols::{f_star, f_star_direct, zero_chain_pair};

fn omission_system(n: usize, t: usize, horizon: u16) -> GeneratedSystem {
    let scenario = Scenario::new(n, t, FailureMode::Omission, horizon).unwrap();
    GeneratedSystem::exhaustive(&scenario)
}

/// Two decision tables agree on every nonfaulty processor of every run.
fn same_nonfaulty_decisions(system: &GeneratedSystem, a: &FipDecisions, b: &FipDecisions) -> bool {
    system.run_ids().all(|run| {
        system
            .nonfaulty(run)
            .iter()
            .all(|p| a.decision(run, p) == b.decision(run, p))
    })
}

/// Lemma A.10/A.11 (combined): one zero-first optimization step leaves
/// `FIP(Z⁰, O⁰)` unchanged — `Z¹ = Z⁰` and `O¹ = O⁰` as decision rules.
#[test]
fn lemma_a10_a11_step_is_identity_on_chain_protocol() {
    let system = omission_system(3, 1, 2);
    let mut ctor = Constructor::new(&system);
    let base = zero_chain_pair(&mut ctor);
    let stepped = ctor.step_zero(&base);
    let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
    let d_stepped = FipDecisions::compute(&system, &stepped, "F¹");
    assert!(
        same_nonfaulty_decisions(&system, &d_base, &d_stepped),
        "step_zero changed the chain protocol's decisions"
    );
}

/// **Reproduction finding** (see `f_star_direct`'s docs): the literal
/// closed form printed in Proposition 6.6 degenerates under the paper's
/// own empty-set convention for `C□` — `C□_{N∧Z⁰} ∃0` is valid, so its
/// decide-1 rule never fires. We verify exactly that: the literal form is
/// a nontrivial agreement protocol, fails the decision property (never
/// decides 1 in all-ones runs), and is strictly dominated by the
/// mechanical Theorem 5.2 construction, which is optimal.
#[test]
fn f_star_literal_closed_form_degenerates() {
    let system = omission_system(3, 1, 2);
    let mut ctor = Constructor::new(&system);
    let mechanical = f_star(&mut ctor);
    let direct = f_star_direct(&mut ctor);
    let d_mech = FipDecisions::compute(&system, &mechanical, "F* (two-step)");
    let d_direct = FipDecisions::compute(&system, &direct, "F* (literal)");

    // C□_{N∧Z⁰} ∃0 is valid in the system …
    let z0 = zero_chain_pair(&mut ctor);
    let z0_id = ctor.evaluator().register_state_sets(z0.zero().clone());
    let c0 = Formula::exists(Value::Zero).continual_common(NonRigidSet::NonfaultyAnd(z0_id));
    assert!(ctor.evaluator().valid(&c0), "C□_{{N∧Z⁰}}∃0 should be valid");

    // … so the literal form never decides 1, failing EBA, while the
    // two-step form is a (verified-optimal) EBA protocol dominating it.
    let report_direct = verify_properties(&system, &d_direct);
    assert!(report_direct.is_nontrivial_agreement());
    assert!(!report_direct.is_eba());
    let report_mech = verify_properties(&system, &d_mech);
    assert!(report_mech.is_eba(), "{report_mech}");
    let dom = dominates(&system, &d_mech, &d_direct);
    assert!(dom.dominates && dom.strict, "{dom}");
}

/// The full Proposition 6.6 statement at a second scenario size: `F*` is
/// an optimal EBA protocol dominating `FIP(Z⁰, O⁰)`.
#[test]
fn f_star_is_optimal_eba_n4() {
    let system = omission_system(4, 1, 3);
    let mut ctor = Constructor::new(&system);
    let base = zero_chain_pair(&mut ctor);
    let star = f_star(&mut ctor);
    let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
    let d_star = FipDecisions::compute(&system, &star, "F*");

    let report = verify_properties(&system, &d_star);
    assert!(report.is_eba(), "{report}");
    let dom = dominates(&system, &d_star, &d_base);
    assert!(dom.dominates, "{dom}");
    assert!(check_optimality(&mut ctor, &star).is_optimal());
}

/// Proposition 6.4 at `n = 4`: decisions by time `f + 1`, exhaustively.
#[test]
fn chain_protocol_decides_by_f_plus_one_n4() {
    let system = omission_system(4, 1, 3);
    let mut ctor = Constructor::new(&system);
    let base = zero_chain_pair(&mut ctor);
    let d = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
    for run in system.run_ids() {
        let f = system.run(run).pattern.num_faulty() as u16;
        for p in system.nonfaulty(run) {
            let t = d.decision_time(run, p).expect("EBA decides");
            assert!(t.ticks() <= f + 1, "{p} decided at {t} with f = {f}");
        }
    }
}

/// `F*` must strictly dominate the chain protocol somewhere (otherwise
/// `FIP(Z⁰, O⁰)` would itself be optimal, which Theorem 5.3 denies).
#[test]
fn f_star_improves_somewhere() {
    let system = omission_system(3, 1, 2);
    let mut ctor = Constructor::new(&system);
    let base = zero_chain_pair(&mut ctor);
    let star = f_star(&mut ctor);
    let base_optimal = check_optimality(&mut ctor, &base).is_optimal();
    let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
    let d_star = FipDecisions::compute(&system, &star, "F*");
    let dom = dominates(&system, &d_star, &d_base);
    assert!(dom.dominates);
    assert_eq!(
        dom.strict, !base_optimal,
        "strict improvement iff the base protocol was not optimal"
    );
}
