//! The paper's knowledge-level protocols (Sections 6.1 and 6.2), plus the
//! common-knowledge SBA rule used for comparison experiments.

use crate::chains::exists_zero_star;
use crate::{Constructor, DecisionPair};
use eba_kripke::{Formula, NonRigidSet};
use eba_model::{ProcessorId, Value};

/// `F^Λ`: the full-information protocol in which no processor ever
/// decides (`Z_i = O_i = ∅`, Section 6.1). The seed of the `F^{Λ,2}`
/// construction.
#[must_use]
pub fn f_lambda(n: usize) -> DecisionPair {
    DecisionPair::empty(n)
}

/// `F^{Λ,1}`: one zero-first optimization step from `F^Λ`. Section 6.1
/// shows its sets simplify to `Z_i = B^N_i ∃0` and `O_i = B^N_i false`.
pub fn f_lambda_1(ctor: &mut Constructor<'_>) -> DecisionPair {
    let n = ctor.system().n();
    ctor.step_zero(&f_lambda(n))
}

/// `F^{Λ,2}`: the two-step optimization of `F^Λ` (Section 6.1) — an
/// optimal nontrivial agreement protocol in both failure modes; an
/// optimal **EBA** protocol in the crash mode (Theorem 6.2) but not in
/// the omission mode (Proposition 6.3 exhibits non-deciding runs).
pub fn f_lambda_2(ctor: &mut Constructor<'_>) -> DecisionPair {
    let n = ctor.system().n();
    ctor.optimize(&f_lambda(n))
}

/// The explicit crash-mode rule of Theorem 6.1:
/// `Z^cr_i = B^N_i ∃0` and `O^cr_i = B^N_i((N ∧ Z^cr) = ∅)`
/// ("believe that no nonfaulty processor knows of a 0").
///
/// Theorem 6.1 proves `F^{Λ,2} = FIP(Z^cr, O^cr)` in the crash mode;
/// the reproduction *checks* that equality instead of assuming it
/// (experiment EXP3).
pub fn crash_rule(ctor: &mut Constructor<'_>) -> DecisionPair {
    let n = ctor.system().n();
    let zero = ctor
        .views_satisfying(|i| Formula::exists(Value::Zero).believed_by(i, NonRigidSet::Nonfaulty));
    let z_id = ctor.evaluator().register_state_sets(zero.clone());
    // (N ∧ Z^cr) = ∅: no processor is both nonfaulty and in Z^cr.
    let empty = Formula::conj(
        ProcessorId::all(n).map(|j| Formula::Nonfaulty(j).and(Formula::StateIn(j, z_id)).not()),
    );
    let one = ctor.views_satisfying(|i| empty.clone().believed_by(i, NonRigidSet::Nonfaulty));
    DecisionPair::new(zero, one)
}

/// `FIP(Z⁰, O⁰)`: the terminating omission-mode EBA protocol of
/// Section 6.2, built on 0-chains: `Z⁰_i = B^N_i ◇̄∃0*` ("believes a
/// 0-chain forms at some time of this run") and `O⁰_i = B^N_i ¬◇̄∃0*`
/// ("believes no 0-chain ever forms"). Proposition 6.4: in a run with
/// `f` failures all nonfaulty processors decide by time `f + 1`.
///
/// The paper writes the rules as `B^N_i ∃0*` / `B^N_i ¬∃0*`; taken
/// literally over the time-indexed `∃0*` ("a chain of length `≤ m`
/// exists") those are wrong at the margins — `¬∃0*` is vacuously believed
/// at time 0 (deciding 1 instantly everywhere), and the `f + 1` bound of
/// Proposition 6.4 needs a processor that has just *received* a chain
/// prefix to decide 0, one round before the completed chain itself
/// appears. The run-closed reading `◇̄∃0*` (a chain at *some* time of the
/// run) repairs both and is exactly the reading under which Lemma A.11's
/// equivalences hold ("the only way processor `i` can believe that `∃0*`
/// holds at some point in a run is …" — the lemma itself quantifies over
/// the whole run). The test suite verifies the resulting protocol has
/// every property the paper proves for `FIP(Z⁰, O⁰)`.
pub fn zero_chain_pair(ctor: &mut Constructor<'_>) -> DecisionPair {
    let star = {
        let eval = ctor.evaluator();
        let bits = exists_zero_star(eval);
        eval.register_point_pred(bits)
    };
    let ever_chain = Formula::PointPred(star).sometime_all();
    let zero = ctor.views_satisfying(|i| ever_chain.clone().believed_by(i, NonRigidSet::Nonfaulty));
    let one = ctor.views_satisfying(|i| {
        ever_chain
            .clone()
            .not()
            .believed_by(i, NonRigidSet::Nonfaulty)
    });
    DecisionPair::new(zero, one)
}

/// `F*`: the optimal omission-mode EBA protocol of Proposition 6.6,
/// obtained by applying the Theorem 5.2 construction to `FIP(Z⁰, O⁰)`.
pub fn f_star(ctor: &mut Constructor<'_>) -> DecisionPair {
    let base = zero_chain_pair(ctor);
    ctor.optimize(&base)
}

/// The *literal* closed form of `F*` as printed in Proposition 6.6:
/// `Z*_i = B^N_i(∃0 ∧ C□_{N∧Z⁰} ∃0)` and
/// `O*_i = B^N_i(∃1 ∧ ¬C□_{N∧Z⁰} ∃0)`.
///
/// **Reproduction note.** Under the standard convention that `C□_S φ` is
/// vacuously true wherever `S` is empty (which the paper itself uses —
/// "if `S(r, m′)` is empty for all `m′ ≥ 0` then `E□_S φ` holds"), this
/// closed form degenerates: every member of `N ∧ Z⁰` knows `∃0`, so
/// `C□_{N∧Z⁰} ∃0` is *valid*, `¬C□_{N∧Z⁰} ∃0` is unsatisfiable, and the
/// decide-1 rule never fires — the literal form is a nontrivial agreement
/// protocol but not an EBA protocol (model-checked in the test suite,
/// where it is also shown to be dominated by [`f_star`]). The mechanical
/// Theorem 5.2 construction ([`f_star`]) is the reading under which
/// Proposition 6.6's *claims* (optimal EBA dominating `FIP(Z⁰, O⁰)`) all
/// verify.
pub fn f_star_direct(ctor: &mut Constructor<'_>) -> DecisionPair {
    let base = zero_chain_pair(ctor);
    let z0_id = ctor.evaluator().register_state_sets(base.zero().clone());
    let s = NonRigidSet::NonfaultyAnd(z0_id);
    let c0 = Formula::exists(Value::Zero).continual_common(s);
    let zero = ctor.views_satisfying(|i| {
        Formula::exists(Value::Zero)
            .and(c0.clone())
            .believed_by(i, NonRigidSet::Nonfaulty)
    });
    let one = ctor.views_satisfying(|i| {
        Formula::exists(Value::One)
            .and(c0.clone().not())
            .believed_by(i, NonRigidSet::Nonfaulty)
    });
    DecisionPair::new(zero, one)
}

/// The common-knowledge decision rule for **simultaneous** Byzantine
/// agreement, per the characterization of \[DM90\]/\[MT88\] that the paper
/// builds on: decide 0 when `C_N ∃0` holds, decide 1 when `C_N ∃1` holds
/// and `C_N ∃0` does not (the tie-break makes the rule deterministic).
///
/// Because common knowledge arises simultaneously at all nonfaulty
/// processors, the induced decisions are simultaneous; this is the SBA
/// baseline of the EBA-vs-SBA comparison (experiment EXP7).
pub fn sba_common_knowledge_pair(ctor: &mut Constructor<'_>) -> DecisionPair {
    let c0 = Formula::exists(Value::Zero).common(NonRigidSet::Nonfaulty);
    let c1 = Formula::exists(Value::One).common(NonRigidSet::Nonfaulty);
    let zero = ctor.views_satisfying(|i| c0.clone().believed_by(i, NonRigidSet::Nonfaulty));
    let one = ctor.views_satisfying(|i| {
        c1.clone()
            .and(c0.clone().not())
            .believed_by(i, NonRigidSet::Nonfaulty)
    });
    DecisionPair::new(zero, one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_optimality, dominates, verify_properties, FipDecisions};
    use eba_model::{FailureMode, Scenario};
    use eba_sim::GeneratedSystem;

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    fn omission_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn theorem_6_1_crash_rule_equals_f_lambda_2() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let fl2 = f_lambda_2(&mut ctor);
        let rule = crash_rule(&mut ctor);
        let d_fl2 = FipDecisions::compute(&system, &fl2, "F^{Λ,2}");
        let d_rule = FipDecisions::compute(&system, &rule, "FIP(Z^cr,O^cr)");
        let fwd = dominates(&system, &d_fl2, &d_rule);
        let bwd = dominates(&system, &d_rule, &d_fl2);
        assert!(
            fwd.equivalent_times() && bwd.equivalent_times(),
            "Theorem 6.1 equality failed: {fwd} / {bwd}"
        );
    }

    #[test]
    fn zero_chain_protocol_is_eba_in_omission_mode() {
        let system = omission_system();
        let mut ctor = Constructor::new(&system);
        let pair = zero_chain_pair(&mut ctor);
        let d = FipDecisions::compute(&system, &pair, "FIP(Z⁰,O⁰)");
        let report = verify_properties(&system, &d);
        assert!(report.is_eba(), "{report}");
    }

    #[test]
    fn proposition_6_4_decisions_by_f_plus_one() {
        let system = omission_system();
        let mut ctor = Constructor::new(&system);
        let pair = zero_chain_pair(&mut ctor);
        let d = FipDecisions::compute(&system, &pair, "FIP(Z⁰,O⁰)");
        for run in system.run_ids() {
            let f = system.run(run).pattern.num_faulty() as u16;
            for p in system.nonfaulty(run) {
                let t = d.decision_time(run, p).expect("EBA decides");
                assert!(
                    t.ticks() <= f + 1,
                    "run {}: {p} decided at {t} with f = {f}",
                    run.index()
                );
            }
        }
    }

    #[test]
    fn f_star_is_optimal_and_dominates_the_chain_protocol() {
        let system = omission_system();
        let mut ctor = Constructor::new(&system);
        let base = zero_chain_pair(&mut ctor);
        let star = f_star(&mut ctor);
        let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
        let d_star = FipDecisions::compute(&system, &star, "F*");
        let report = verify_properties(&system, &d_star);
        assert!(report.is_eba(), "{report}");
        assert!(dominates(&system, &d_star, &d_base).dominates);
        assert!(check_optimality(&mut ctor, &star).is_optimal());
    }

    #[test]
    fn sba_rule_is_simultaneous() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let pair = sba_common_knowledge_pair(&mut ctor);
        let d = FipDecisions::compute(&system, &pair, "SBA");
        let report = verify_properties(&system, &d);
        assert!(report.is_sba(), "{report}");
    }

    #[test]
    fn sba_never_beats_optimal_eba() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let eba = f_lambda_2(&mut ctor);
        let sba = sba_common_knowledge_pair(&mut ctor);
        let d_eba = FipDecisions::compute(&system, &eba, "F^{Λ,2}");
        let d_sba = FipDecisions::compute(&system, &sba, "SBA");
        let report = dominates(&system, &d_eba, &d_sba);
        assert!(report.dominates && report.strict, "{report}");
    }
}
