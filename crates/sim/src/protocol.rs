//! The protocol abstraction of Section 2.3.

use eba_model::{ProcessorId, Round, Value};
use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic synchronous protocol, following the formalization of
/// Section 2.3 of the paper: a protocol is a message-generation function
/// `μ_ij : Q → L`, a state-transition function `δ_i : Q × Lⁿ → Q`, and an
/// output function.
///
/// Conventions:
///
/// * `None` plays the role of the null message `Λ`;
/// * the output function returns `None` for `⊥` (no decision yet); once a
///   processor outputs a value its later outputs must stay equal
///   (decisions are irreversible) — [`crate::execute`] asserts this in
///   debug builds and [`crate::Trace`] records the first decision;
/// * the executor passes the processor id and round number explicitly for
///   convenience; a well-formed protocol state determines both.
///
/// # Example
///
/// A one-round protocol where everyone broadcasts its value and decides on
/// the minimum value it has seen:
///
/// ```
/// use eba_model::{ProcessorId, Round, Value};
/// use eba_sim::Protocol;
///
/// struct MinOnce;
///
/// impl Protocol for MinOnce {
///     type State = (Value, bool); // (minimum seen, done)
///     type Message = Value;
///
///     fn name(&self) -> &'static str { "min-once" }
///
///     fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> Self::State {
///         (value, false)
///     }
///
///     fn message(
///         &self,
///         state: &Self::State,
///         _from: ProcessorId,
///         _to: ProcessorId,
///         round: Round,
///     ) -> Option<Value> {
///         (round == Round::FIRST).then_some(state.0)
///     }
///
///     fn transition(
///         &self,
///         state: &Self::State,
///         _p: ProcessorId,
///         _round: Round,
///         received: &[Option<Value>],
///     ) -> Self::State {
///         let min = received
///             .iter()
///             .flatten()
///             .fold(state.0, |acc, &v| acc.min(v));
///         (min, true)
///     }
///
///     fn output(&self, state: &Self::State, _p: ProcessorId) -> Option<Value> {
///         state.1.then_some(state.0)
///     }
/// }
/// ```
pub trait Protocol {
    /// The local-state set `Q`.
    type State: Clone + Eq + Hash + Debug;
    /// The message alphabet `L` (without the null message, which is
    /// modeled by `Option::None`).
    type Message: Clone + Eq + Debug;

    /// A short human-readable protocol name, used in reports.
    fn name(&self) -> &str;

    /// The initial state `σ_i` of processor `p`, given its initial value.
    fn initial_state(&self, p: ProcessorId, n: usize, value: Value) -> Self::State;

    /// The message-generation function `μ_{from,to}` for `round`; `None`
    /// is the null message.
    fn message(
        &self,
        state: &Self::State,
        from: ProcessorId,
        to: ProcessorId,
        round: Round,
    ) -> Option<Self::Message>;

    /// The state-transition function `δ_p`: computes the state at the end
    /// of `round` from the state at its start and the messages received
    /// during it (`received[j]` is the message from processor `j`, if
    /// delivered; `received[p] = None` always — own memory lives in the
    /// state).
    fn transition(
        &self,
        state: &Self::State,
        p: ProcessorId,
        round: Round,
        received: &[Option<Self::Message>],
    ) -> Self::State;

    /// The output function: `Some(v)` once the processor has decided `v`,
    /// `None` for `⊥`.
    fn output(&self, state: &Self::State, p: ProcessorId) -> Option<Value>;

    /// The size of a message in abstract units (think words); used by the
    /// executor to account message complexity. Defaults to 1 — override
    /// for protocols with structured messages (Section 6.1 of the paper
    /// distinguishes `P0opt`'s linear-size messages from the exponential
    /// full-information exchange).
    fn message_units(&self, _message: &Self::Message) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: runners store heterogeneous
    /// protocols behind `dyn`.
    #[test]
    fn protocol_is_object_safe() {
        struct Null;
        impl Protocol for Null {
            type State = ();
            type Message = ();
            fn name(&self) -> &str {
                "null"
            }
            fn initial_state(&self, _: ProcessorId, _: usize, _: Value) {}
            fn message(&self, (): &(), _: ProcessorId, _: ProcessorId, _: Round) -> Option<()> {
                None
            }
            fn transition(&self, (): &(), _: ProcessorId, _: Round, _: &[Option<()>]) {}
            fn output(&self, (): &(), _: ProcessorId) -> Option<Value> {
                None
            }
        }
        let boxed: Box<dyn Protocol<State = (), Message = ()>> = Box::new(Null);
        assert_eq!(boxed.name(), "null");
    }
}
