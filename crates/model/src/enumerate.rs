//! Exhaustive enumeration of faulty behaviors and failure patterns.
//!
//! The generated systems of the reproduction are built by enumerating *all*
//! failure patterns of a [`Scenario`] (together with all initial
//! configurations). Enumeration is exact but exponential; see
//! [`count_patterns`] to estimate a scenario's size before generating it.
//!
//! Canonical encodings avoid double-counting runs that are identical inside
//! the horizon:
//!
//! * crash mode: [`FaultyBehavior::Clean`] represents "fails after the
//!   horizon"; a crash in the last round that delivers to everyone is
//!   *not* emitted (it would be indistinguishable from `Clean`);
//! * omission mode: the all-empty omission vector plays the role of
//!   `Clean`, which is therefore not emitted separately.

use crate::procset::subsets;
use crate::{
    ArmedBudget, BudgetHit, FailureMode, FailurePattern, FaultyBehavior, ModelError, ProcSet,
    ProcessorId, Round, Scenario, Time,
};

/// Enumerates all crash-mode faulty behaviors of processor `p` in a system
/// of `n` processors within `horizon`.
///
/// Includes [`FaultyBehavior::Clean`] and every `Crash { round, receivers }`
/// with `round ≤ horizon` and `receivers` a subset of the other processors,
/// except the crash-at-last-round-delivering-to-all behavior, which is
/// indistinguishable from `Clean` inside the horizon.
#[must_use]
pub fn crash_behaviors(p: ProcessorId, n: usize, horizon: Time) -> Vec<FaultyBehavior> {
    let others = ProcSet::full(n) - ProcSet::singleton(p);
    let mut out = vec![FaultyBehavior::Clean];
    for round in Round::upto(horizon) {
        for receivers in subsets(others) {
            if round.end() == horizon && receivers == others {
                continue; // indistinguishable from Clean inside the horizon
            }
            out.push(FaultyBehavior::Crash { round, receivers });
        }
    }
    out
}

/// Enumerates all omission-mode faulty behaviors of processor `p` in a
/// system of `n` processors within `horizon`: every vector of per-round
/// omission sets. The all-empty vector (no deviation inside the horizon)
/// is included and serves as the canonical "clean" behavior.
#[must_use]
pub fn omission_behaviors(p: ProcessorId, n: usize, horizon: Time) -> Vec<FaultyBehavior> {
    let others = ProcSet::full(n) - ProcSet::singleton(p);
    let rounds = horizon.index();
    let mut out = Vec::new();
    let mut current: Vec<ProcSet> = vec![ProcSet::empty(); rounds];
    fill_omissions(&mut out, &mut current, 0, others, rounds);
    out
}

fn fill_omissions(
    out: &mut Vec<FaultyBehavior>,
    current: &mut Vec<ProcSet>,
    round_idx: usize,
    others: ProcSet,
    rounds: usize,
) {
    if round_idx == rounds {
        out.push(FaultyBehavior::Omission {
            omissions: current.clone(),
        });
        return;
    }
    for omitted in subsets(others) {
        current[round_idx] = omitted;
        fill_omissions(out, current, round_idx + 1, others, rounds);
    }
    current[round_idx] = ProcSet::empty();
}

/// Enumerates all general-omission faulty behaviors of processor `p`:
/// every pair of send/receive omission vectors. The space is the square
/// of the sending-omission space — use only for very small scenarios.
#[must_use]
pub fn general_omission_behaviors(p: ProcessorId, n: usize, horizon: Time) -> Vec<FaultyBehavior> {
    let sends = omission_behaviors(p, n, horizon);
    let mut out = Vec::with_capacity(sends.len() * sends.len());
    for send_behavior in &sends {
        let FaultyBehavior::Omission { omissions: send } = send_behavior else {
            unreachable!("omission_behaviors yields omission behaviors");
        };
        for recv_behavior in &sends {
            let FaultyBehavior::Omission { omissions: receive } = recv_behavior else {
                unreachable!("omission_behaviors yields omission behaviors");
            };
            out.push(FaultyBehavior::GeneralOmission {
                send: send.clone(),
                receive: receive.clone(),
            });
        }
    }
    out
}

/// Enumerates the faulty behaviors of `p` permitted by the scenario's
/// failure mode.
#[must_use]
pub fn behaviors(scenario: &Scenario, p: ProcessorId) -> Vec<FaultyBehavior> {
    match scenario.mode() {
        FailureMode::Crash => crash_behaviors(p, scenario.n(), scenario.horizon()),
        FailureMode::Omission => omission_behaviors(p, scenario.n(), scenario.horizon()),
        FailureMode::GeneralOmission => {
            general_omission_behaviors(p, scenario.n(), scenario.horizon())
        }
    }
}

/// Enumerates all sets of at most `t` faulty processors out of `n`, in
/// increasing size order within a deterministic overall order.
#[must_use]
pub fn faulty_sets(n: usize, t: usize) -> Vec<ProcSet> {
    let mut sets: Vec<ProcSet> = subsets(ProcSet::full(n)).filter(|s| s.len() <= t).collect();
    sets.sort_by_key(|s| (s.len(), s.bits()));
    sets
}

/// An iterator over every failure pattern of a scenario; see [`patterns`].
#[derive(Clone, Debug)]
pub struct Patterns {
    scenario: Scenario,
    faulty_sets: Vec<ProcSet>,
    set_idx: usize,
    members: Vec<ProcessorId>,
    behavior_lists: Vec<Vec<FaultyBehavior>>,
    odometer: Vec<usize>,
    finished: bool,
    budget: Option<ArmedBudget>,
    yielded: u64,
    budget_hit: Option<BudgetHit>,
}

impl Patterns {
    /// Governs the remainder of the enumeration by `budget`: the deadline
    /// is checked before every pattern and `max_runs` bounds the number of
    /// patterns yielded (each pattern is one unit of enumeration work).
    /// When a bound trips, the iterator stops yielding and records the
    /// [`BudgetHit`] — retrievable via [`Patterns::budget_hit`] — so
    /// callers can distinguish *exhausted* from *cut short*.
    #[must_use]
    pub fn governed(mut self, budget: ArmedBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The budget hit that cut the enumeration short, if any. `None` after
    /// a complete enumeration (or before one finishes).
    #[must_use]
    pub fn budget_hit(&self) -> Option<BudgetHit> {
        self.budget_hit
    }

    fn load_set(&mut self) {
        let set = self.faulty_sets[self.set_idx];
        self.members = set.iter().collect();
        self.behavior_lists = self
            .members
            .iter()
            .map(|&p| behaviors(&self.scenario, p))
            .collect();
        self.odometer = vec![0; self.members.len()];
    }

    fn current_pattern(&self) -> FailurePattern {
        let mut pat = FailurePattern::failure_free(self.scenario.n());
        for (k, &p) in self.members.iter().enumerate() {
            pat.set_behavior(p, self.behavior_lists[k][self.odometer[k]].clone());
        }
        pat
    }

    /// Positions the iterator so that the next `next()` call yields the
    /// pattern at position `index` of the full enumeration order, in
    /// O(#faulty-sets) time (no patterns are materialized while seeking).
    ///
    /// Seeking to [`count_patterns`] or beyond leaves the iterator
    /// exhausted. This is the primitive behind
    /// [`ScenarioSpace`](crate::ScenarioSpace) sharding: a shard over
    /// `[start, end)` is `patterns(&s)` seeked to `start` and taken
    /// `end − start` times.
    pub fn seek(&mut self, mut index: u128) {
        // Every processor has the same number of canonical behaviors (the
        // lists differ only in which processor the receiver sets exclude),
        // so a faulty set of size k contributes per_proc^k patterns and we
        // can skip whole sets without materializing behavior lists.
        let per_proc = behaviors(&self.scenario, ProcessorId::new(0)).len() as u128;
        self.finished = false;
        self.set_idx = 0;
        loop {
            if self.set_idx >= self.faulty_sets.len() {
                self.finished = true;
                return;
            }
            let width = u32::try_from(self.faulty_sets[self.set_idx].len())
                .expect("a faulty set holds at most 128 processors");
            // A block larger than `u128::MAX` trivially contains any
            // in-range index, so a checked-pow overflow means "stop here"
            // rather than wrapping into a bogus skip distance.
            match per_proc.checked_pow(width) {
                Some(block) if index >= block => {
                    index -= block;
                    self.set_idx += 1;
                }
                _ => break,
            }
        }
        self.load_set();
        // Mixed-radix decomposition of the within-set offset; the first
        // member is the fastest-moving digit, matching `advance`. Each
        // digit is a remainder modulo a `Vec` length, so the narrowing is
        // lossless by construction.
        for k in 0..self.odometer.len() {
            let len = self.behavior_lists[k].len() as u128;
            self.odometer[k] =
                usize::try_from(index % len).expect("remainder is below a vector length");
            index /= len;
        }
        debug_assert_eq!(index, 0, "seek offset exceeded the faulty set's block");
    }

    fn advance(&mut self) {
        // Increment the odometer; on overflow move to the next faulty set.
        for k in 0..self.odometer.len() {
            self.odometer[k] += 1;
            if self.odometer[k] < self.behavior_lists[k].len() {
                return;
            }
            self.odometer[k] = 0;
        }
        self.set_idx += 1;
        if self.set_idx >= self.faulty_sets.len() {
            self.finished = true;
        } else {
            self.load_set();
        }
    }
}

impl Iterator for Patterns {
    type Item = FailurePattern;

    fn next(&mut self) -> Option<FailurePattern> {
        if self.finished {
            return None;
        }
        if let Some(budget) = self.budget {
            if let Err(hit) = budget.check_runs(self.yielded + 1) {
                self.budget_hit = Some(hit);
                self.finished = true;
                return None;
            }
        }
        let pattern = self.current_pattern();
        self.advance();
        self.yielded += 1;
        Some(pattern)
    }
}

/// Enumerates every failure pattern of `scenario`: every faulty set of size
/// at most `t`, crossed with every combination of canonical behaviors for
/// its members. The failure-free pattern comes first.
///
/// # Example
///
/// ```
/// use eba_model::{enumerate, FailureMode, Scenario};
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let s = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let all: Vec<_> = enumerate::patterns(&s).collect();
/// assert_eq!(all.len() as u128, enumerate::count_patterns(&s));
/// assert_eq!(all[0].num_faulty(), 0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn patterns(scenario: &Scenario) -> Patterns {
    let mut iter = Patterns {
        scenario: *scenario,
        faulty_sets: faulty_sets(scenario.n(), scenario.t()),
        set_idx: 0,
        members: Vec::new(),
        behavior_lists: Vec::new(),
        odometer: Vec::new(),
        finished: false,
        budget: None,
        yielded: 0,
        budget_hit: None,
    };
    iter.load_set();
    iter
}

/// Computes the number of patterns [`patterns`] will yield, without
/// enumerating them; every intermediate product is checked, so a scenario
/// whose pattern count outgrows `u128` surfaces a typed
/// [`ModelError::CapacityExceeded`] instead of wrapping.
///
/// # Errors
///
/// Returns [`ModelError::CapacityExceeded`] when the count overflows
/// `u128` (the pattern-index arithmetic of [`Patterns::seek`] and the
/// sharding of [`crate::ScenarioSpace`] both key on this width).
pub fn try_count_patterns(scenario: &Scenario) -> Result<u128, ModelError> {
    let n = scenario.n();
    let horizon = scenario.horizon();
    let overflow = || ModelError::capacity_exceeded("pattern enumeration indices", u128::MAX);
    let subsets_of_others = 1u128
        .checked_shl(u32::try_from(n - 1).expect("scenario widths fit u32"))
        .ok_or_else(overflow)?;
    // All per-processor behavior lists have the same length (they differ
    // only in which processor is excluded from receiver sets).
    let per_proc: u128 = match scenario.mode() {
        FailureMode::Crash => {
            // Clean + T·2^(n−1) crash behaviors, minus the one skipped
            // (last round, all receivers).
            u128::from(horizon.ticks())
                .checked_mul(subsets_of_others)
                .ok_or_else(overflow)?
        }
        FailureMode::Omission => subsets_of_others
            .checked_pow(u32::from(horizon.ticks()))
            .ok_or_else(overflow)?,
        FailureMode::GeneralOmission => subsets_of_others
            .checked_pow(u32::from(horizon.ticks()))
            .and_then(|v| v.checked_pow(2))
            .ok_or_else(overflow)?,
    };
    let mut total: u128 = 0;
    for s in faulty_sets(n, scenario.t()) {
        let width = u32::try_from(s.len()).expect("a faulty set holds at most 128 processors");
        let block = per_proc.checked_pow(width).ok_or_else(overflow)?;
        total = total.checked_add(block).ok_or_else(overflow)?;
    }
    Ok(total)
}

/// [`try_count_patterns`] for callers without an error channel.
///
/// # Panics
///
/// Panics with the rendered [`ModelError::CapacityExceeded`] when the
/// count overflows `u128`.
#[must_use]
pub fn count_patterns(scenario: &Scenario) -> u128 {
    match try_count_patterns(scenario) {
        Ok(count) => count,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn crash_behaviors_count_and_validity() {
        let n = 3;
        let horizon = Time::new(2);
        let list = crash_behaviors(p(0), n, horizon);
        // Clean + 2 rounds × 4 subsets − 1 skipped = 8.
        assert_eq!(list.len(), 8);
        for b in &list {
            assert!(b.allowed_in(FailureMode::Crash));
        }
        assert!(list.contains(&FaultyBehavior::Clean));
        // The skipped behavior is absent.
        let skipped = FaultyBehavior::Crash {
            round: Round::new(2),
            receivers: ProcSet::full(3) - ProcSet::singleton(p(0)),
        };
        assert!(!list.contains(&skipped));
    }

    #[test]
    fn omission_behaviors_count() {
        let list = omission_behaviors(p(1), 3, Time::new(2));
        // (2^2)^2 = 16 vectors.
        assert_eq!(list.len(), 16);
        for b in &list {
            assert!(b.allowed_in(FailureMode::Omission));
            if let FaultyBehavior::Omission { omissions } = b {
                assert_eq!(omissions.len(), 2);
                assert!(omissions.iter().all(|o| !o.contains(p(1))));
            }
        }
    }

    #[test]
    fn faulty_sets_bounded_by_t() {
        let sets = faulty_sets(4, 2);
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11.
        assert_eq!(sets.len(), 11);
        assert!(sets.iter().all(|s| s.len() <= 2));
        assert_eq!(sets[0], ProcSet::empty());
    }

    #[test]
    fn patterns_match_count_crash() {
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let all: Vec<_> = patterns(&s).collect();
        assert_eq!(all.len() as u128, count_patterns(&s));
        // 1 (failure-free) + 3 processors × 8 behaviors = 25.
        assert_eq!(all.len(), 25);
        for pat in &all {
            s.validate_pattern(pat).unwrap();
        }
    }

    #[test]
    fn patterns_match_count_omission() {
        let s = Scenario::new(3, 2, FailureMode::Omission, 2).unwrap();
        let all: Vec<_> = patterns(&s).collect();
        assert_eq!(all.len() as u128, count_patterns(&s));
        // 1 + 3×16 + 3×16² = 817.
        assert_eq!(all.len(), 817);
        for pat in &all {
            s.validate_pattern(pat).unwrap();
        }
    }

    #[test]
    fn patterns_are_distinct() {
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let mut all: Vec<_> = patterns(&s).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn governed_enumeration_stops_at_max_runs() {
        use crate::RunBudget;
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let total = count_patterns(&s);
        assert!(total > 10);
        let mut iter = patterns(&s).governed(RunBudget::unlimited().with_max_runs(10).arm());
        let got: Vec<_> = iter.by_ref().collect();
        assert_eq!(got.len(), 10);
        assert_eq!(
            iter.budget_hit(),
            Some(crate::BudgetHit::MaxRuns { limit: 10 })
        );
        // The truncated prefix matches the ungoverned enumeration.
        let full: Vec<_> = patterns(&s).take(10).collect();
        assert_eq!(got, full);
    }

    #[test]
    fn governed_enumeration_without_pressure_completes() {
        use crate::RunBudget;
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let mut iter = patterns(&s).governed(RunBudget::unlimited().with_max_runs(1 << 20).arm());
        let got = iter.by_ref().count();
        assert_eq!(got as u128, count_patterns(&s));
        assert_eq!(iter.budget_hit(), None);
    }

    #[test]
    fn governed_enumeration_honors_deadline() {
        use crate::RunBudget;
        use std::time::Duration;
        let s = Scenario::new(3, 2, FailureMode::Omission, 2).unwrap();
        let mut iter =
            patterns(&s).governed(RunBudget::unlimited().with_deadline(Duration::ZERO).arm());
        assert_eq!(iter.next(), None);
        assert!(matches!(
            iter.budget_hit(),
            Some(crate::BudgetHit::Deadline { .. })
        ));
    }

    #[test]
    fn failure_free_comes_first() {
        let s = Scenario::new(4, 2, FailureMode::Crash, 3).unwrap();
        let first = patterns(&s).next().unwrap();
        assert_eq!(first.num_faulty(), 0);
    }
}
