//! Finite system scenarios.

use crate::{FailureMode, FailurePattern, ModelError, Time};
use std::fmt;

/// A fully-specified finite instance of the paper's model: `n` processors,
/// at most `t` of which may be faulty, a [`FailureMode`], and a finite
/// *horizon* (the number of rounds a generated system simulates).
///
/// # Horizon
///
/// The paper's systems contain runs of unbounded length; the reproduction
/// works with a finite horizon `T`. Every protocol studied in the paper
/// decides by time `t + 1` (crash) or `f + 1 ≤ t + 1` (the omission-mode
/// 0-chain protocol), so a horizon of `t + 2`
/// ([`Scenario::recommended_horizon`]) captures every decision and makes
/// the knowledge tests the protocols use stable; see DESIGN.md §2 and the
/// horizon ablation in EXP10.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let s = Scenario::new(4, 1, FailureMode::Crash, 3)?;
/// assert_eq!(s.n(), 4);
/// assert_eq!(s.t(), 1);
/// assert_eq!(s.horizon().ticks(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scenario {
    n: usize,
    t: usize,
    mode: FailureMode,
    horizon: Time,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `n < 2`, `n > 128`,
    /// `t ≥ n`, or `horizon < 1`.
    pub fn new(n: usize, t: usize, mode: FailureMode, horizon: u16) -> Result<Self, ModelError> {
        if n < 2 {
            return Err(ModelError::invalid_scenario("need at least two processors"));
        }
        if n > crate::ProcessorId::MAX_PROCESSORS {
            return Err(ModelError::invalid_scenario(format!(
                "n = {n} exceeds the supported maximum of {}",
                crate::ProcessorId::MAX_PROCESSORS
            )));
        }
        if t >= n {
            return Err(ModelError::invalid_scenario(format!(
                "t = {t} must be smaller than n = {n}"
            )));
        }
        if horizon == 0 {
            return Err(ModelError::invalid_scenario(
                "horizon must cover at least one round",
            ));
        }
        Ok(Scenario {
            n,
            t,
            mode,
            horizon: Time::new(horizon),
        })
    }

    /// Creates a scenario with the recommended horizon `t + 2`.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::new`].
    pub fn with_recommended_horizon(
        n: usize,
        t: usize,
        mode: FailureMode,
    ) -> Result<Self, ModelError> {
        Scenario::new(n, t, mode, t as u16 + 2)
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Upper bound on the number of faulty processors.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// The failure mode.
    #[must_use]
    pub fn mode(&self) -> FailureMode {
        self.mode
    }

    /// The horizon: generated runs cover times `0..=horizon`.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The recommended horizon for this `(n, t)`: `t + 2` rounds.
    #[must_use]
    pub fn recommended_horizon(&self) -> Time {
        Time::new(self.t as u16 + 2)
    }

    /// Returns a copy of this scenario with a different horizon.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `horizon < 1`.
    pub fn with_horizon(self, horizon: u16) -> Result<Self, ModelError> {
        Scenario::new(self.n, self.t, self.mode, horizon)
    }

    /// Validates a failure pattern against this scenario.
    ///
    /// # Errors
    ///
    /// See [`FailurePattern::validate`]; additionally rejects patterns
    /// whose processor count differs from `n`.
    pub fn validate_pattern(&self, pattern: &FailurePattern) -> Result<(), ModelError> {
        if pattern.n() != self.n {
            return Err(ModelError::invalid_pattern(format!(
                "pattern is over {} processors, scenario has {}",
                pattern.n(),
                self.n
            )));
        }
        pattern.validate(self.mode, self.t, self.horizon)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} t={} mode={} T={}",
            self.n,
            self.t,
            self.mode,
            self.horizon.ticks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyBehavior, ProcessorId};

    #[test]
    fn valid_scenario() {
        let s = Scenario::new(4, 2, FailureMode::Omission, 4).unwrap();
        assert_eq!(s.n(), 4);
        assert_eq!(s.t(), 2);
        assert_eq!(s.mode(), FailureMode::Omission);
        assert_eq!(s.horizon(), Time::new(4));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Scenario::new(1, 0, FailureMode::Crash, 2).is_err());
        assert!(Scenario::new(3, 3, FailureMode::Crash, 2).is_err());
        assert!(Scenario::new(3, 1, FailureMode::Crash, 0).is_err());
        assert!(Scenario::new(129, 1, FailureMode::Crash, 2).is_err());
    }

    #[test]
    fn recommended_horizon_is_t_plus_two() {
        let s = Scenario::with_recommended_horizon(5, 2, FailureMode::Crash).unwrap();
        assert_eq!(s.horizon(), Time::new(4));
        assert_eq!(s.recommended_horizon(), Time::new(4));
    }

    #[test]
    fn with_horizon_changes_only_horizon() {
        let s = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        let s2 = s.with_horizon(5).unwrap();
        assert_eq!(s2.horizon(), Time::new(5));
        assert_eq!(s2.n(), 4);
    }

    #[test]
    fn validate_pattern_checks_size_and_content() {
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        assert!(s
            .validate_pattern(&FailurePattern::failure_free(4))
            .is_err());
        assert!(s.validate_pattern(&FailurePattern::failure_free(3)).is_ok());
        let bad = FailurePattern::failure_free(3).with_behavior(
            ProcessorId::new(0),
            FaultyBehavior::Omission { omissions: vec![] },
        );
        assert!(s.validate_pattern(&bad).is_err());
    }

    #[test]
    fn display() {
        let s = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        assert_eq!(s.to_string(), "n=4 t=1 mode=crash T=3");
    }
}
