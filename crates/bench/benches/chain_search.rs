//! Cost of the `∃0*` 0-chain search (Section 6.2) over exhaustive
//! omission systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::chains::exists_zero_star;
use eba_kripke::Evaluator;
use eba_model::{FailureMode, Scenario};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

fn chain_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("exists_zero_star");
    group.sample_size(10);
    for (n, t, horizon) in [(3usize, 1usize, 2u16), (4, 1, 3)] {
        let scenario = Scenario::new(n, t, FailureMode::Omission, horizon).expect("valid scenario");
        let system = GeneratedSystem::exhaustive(&scenario);
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario),
            &system,
            |b, system| {
                b.iter(|| {
                    let mut eval = Evaluator::new(system);
                    black_box(exists_zero_star(&mut eval));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, chain_search);
criterion_main!(benches);
