//! Shared helpers for the experiment implementations.

use eba_core::FipDecisions;
use eba_model::{InitialConfig, ProcessorId, Scenario, Time};
use eba_sim::stats::DecisionStats;
use eba_sim::{execute_unchecked, GeneratedSystem, Protocol};

/// Whether heavyweight experiment variants are enabled
/// (`EBA_EXP_FULL=1`).
#[must_use]
pub fn full_mode() -> bool {
    std::env::var("EBA_EXP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Decision times of every nonfaulty processor of every run of the
/// generated system under a message-level protocol, aligned with the
/// system's run ids.
pub fn message_level_times<P: Protocol>(
    protocol: &P,
    system: &GeneratedSystem,
) -> Vec<Vec<Option<Time>>> {
    system
        .run_ids()
        .map(|run| {
            let record = system.run(run);
            let trace =
                execute_unchecked(protocol, &record.config, &record.pattern, system.horizon());
            ProcessorId::all(system.n())
                .map(|p| {
                    record
                        .nonfaulty
                        .contains(p)
                        .then(|| trace.decision_time(p))
                        .flatten()
                })
                .collect()
        })
        .collect()
}

/// Decision-time statistics of a knowledge-level protocol over nonfaulty
/// processors.
#[must_use]
pub fn fip_stats(system: &GeneratedSystem, d: &FipDecisions) -> DecisionStats {
    let mut stats = DecisionStats::new();
    for run in system.run_ids() {
        for p in system.nonfaulty(run) {
            stats.record(d.decision(run, p));
        }
    }
    stats
}

/// Compares two aligned decision-time tables: returns
/// `(dominates, strictly, earlier, equal, later)` for "does `a` dominate
/// `b`".
#[must_use]
pub fn compare_times(
    a: &[Vec<Option<Time>>],
    b: &[Vec<Option<Time>>],
) -> (bool, bool, u64, u64, u64) {
    let (mut earlier, mut equal, mut later) = (0u64, 0u64, 0u64);
    for (ra, rb) in a.iter().zip(b) {
        for (ta, tb) in ra.iter().zip(rb) {
            match (ta, tb) {
                (Some(ta), Some(tb)) if ta < tb => earlier += 1,
                (Some(ta), Some(tb)) if ta > tb => later += 1,
                (Some(_), Some(_)) => equal += 1,
                (Some(_), None) => earlier += 1,
                (None, Some(_)) => later += 1,
                (None, None) => {}
            }
        }
    }
    let dominates = later == 0;
    (dominates, dominates && earlier > 0, earlier, equal, later)
}

/// All-ones / all-zeros / one-zero convenience configurations.
#[must_use]
pub fn one_zero_config(n: usize) -> InitialConfig {
    InitialConfig::from_bits(n, ((1u128 << n) - 1) & !1)
}

/// Builds an exhaustive system, asserting the scenario is valid.
#[must_use]
pub fn exhaustive(
    n: usize,
    t: usize,
    mode: eba_model::FailureMode,
    horizon: u16,
) -> GeneratedSystem {
    let scenario = Scenario::new(n, t, mode, horizon).expect("valid scenario");
    GeneratedSystem::exhaustive(&scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, Value};

    #[test]
    fn one_zero_config_shape() {
        let c = one_zero_config(4);
        assert_eq!(c.value(ProcessorId::new(0)), Value::Zero);
        assert_eq!(c.holders(Value::One).len(), 3);
    }

    #[test]
    fn compare_times_counts() {
        let t = |k: u16| Some(Time::new(k));
        let a = vec![vec![t(0), t(1), None]];
        let b = vec![vec![t(1), t(1), None]];
        let (dom, strict, earlier, equal, later) = compare_times(&a, &b);
        assert!(dom && strict);
        assert_eq!((earlier, equal, later), (1, 1, 0));
        let (dom, strict, ..) = compare_times(&b, &a);
        assert!(!dom && !strict);
    }

    #[test]
    fn exhaustive_helper_builds() {
        let system = exhaustive(3, 1, FailureMode::Crash, 2);
        assert!(system.num_runs() > 0);
    }
}
