//! Running a protocol against a configuration and a failure pattern.

use crate::{Decision, Protocol, Trace};
use eba_model::{FailurePattern, InitialConfig, ProcessorId, Round, Time};
use std::fmt;

/// Why a checked execution ([`execute`]) rejected its inputs or the
/// protocol's behavior.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The configuration and the failure pattern disagree on the number
    /// of processors; together they do not describe a run.
    ArityMismatch {
        /// `n` according to the initial configuration.
        config_n: usize,
        /// `n` according to the failure pattern.
        pattern_n: usize,
    },
    /// The protocol revoked or changed a decision. Decisions are
    /// irreversible by definition (Section 2.2); a protocol that changes
    /// its output violates the problem statement, not the model.
    DecisionRevoked {
        /// The processor whose decision changed.
        processor: ProcessorId,
        /// The time at which the changed output was observed.
        time: Time,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ArityMismatch {
                config_n,
                pattern_n,
            } => write!(
                f,
                "configuration ({config_n} processors) and failure pattern \
                 ({pattern_n} processors) disagree on the number of processors"
            ),
            ExecError::DecisionRevoked { processor, time } => write!(
                f,
                "protocol revoked or changed the decision of {processor} at {time}; \
                 decisions are irreversible"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// How strictly [`run`] polices the protocol's outputs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Checking {
    /// Violations surface as [`ExecError`] ([`execute`]).
    Strict,
    /// Violations are `debug_assert`ed only ([`execute_unchecked`]).
    Debug,
}

/// Executes `protocol` for `horizon` rounds under the given initial
/// configuration and failure pattern, returning the complete [`Trace`].
///
/// Semantics (Sections 2.1 and 2.3 of the paper):
///
/// * in every round each alive processor computes its outgoing messages
///   from its current state, then receives the messages delivered to it,
///   then transitions;
/// * the failure pattern decides delivery: a faulty sender's messages may
///   be dropped per its behavior, and a crashed receiver receives nothing
///   from its crash round on;
/// * decisions are read off the output function at each time; the trace
///   records the first (irreversible) decision of each processor.
///
/// # Errors
///
/// Returns [`ExecError::ArityMismatch`] when `config` and `pattern`
/// disagree on the number of processors, and
/// [`ExecError::DecisionRevoked`] when the protocol revokes or changes a
/// decision (outputs are required to be irreversible). Hot paths with
/// validated inputs can use [`execute_unchecked`] instead.
///
/// # Example
///
/// See [`Protocol`] for a complete protocol definition; executing it:
///
/// ```
/// # use eba_model::{FailurePattern, InitialConfig, ProcessorId, Round, Time, Value};
/// # use eba_sim::{execute, Protocol};
/// # struct Echo;
/// # impl Protocol for Echo {
/// #     type State = Value;
/// #     type Message = ();
/// #     fn name(&self) -> &str { "echo" }
/// #     fn initial_state(&self, _: ProcessorId, _: usize, v: Value) -> Value { v }
/// #     fn message(&self, _: &Value, _: ProcessorId, _: ProcessorId, _: Round) -> Option<()> { None }
/// #     fn transition(&self, s: &Value, _: ProcessorId, _: Round, _: &[Option<()>]) -> Value { *s }
/// #     fn output(&self, s: &Value, _: ProcessorId) -> Option<Value> { Some(*s) }
/// # }
/// # fn main() -> Result<(), eba_sim::ExecError> {
/// let config = InitialConfig::uniform(3, Value::One);
/// let pattern = FailurePattern::failure_free(3);
/// let trace = execute(&Echo, &config, &pattern, Time::new(2))?;
/// assert_eq!(trace.decided_value(ProcessorId::new(0)), Some(Value::One));
/// # Ok(())
/// # }
/// ```
pub fn execute<P: Protocol>(
    protocol: &P,
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
) -> Result<Trace<P::State>, ExecError> {
    if config.n() != pattern.n() {
        return Err(ExecError::ArityMismatch {
            config_n: config.n(),
            pattern_n: pattern.n(),
        });
    }
    run(protocol, config, pattern, horizon, Checking::Strict)
}

/// [`execute`] without the checked contract, for hot paths whose inputs
/// are validated upstream (e.g. runs drawn from a generated system, whose
/// configs and patterns share the scenario's `n` by construction).
///
/// # Panics
///
/// Panics if `config` and `pattern` disagree on the number of processors.
/// In debug builds, also panics if the protocol revokes or changes a
/// decision; release builds skip that check entirely.
pub fn execute_unchecked<P: Protocol>(
    protocol: &P,
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
) -> Trace<P::State> {
    assert_eq!(
        config.n(),
        pattern.n(),
        "configuration and failure pattern disagree on the number of processors"
    );
    match run(protocol, config, pattern, horizon, Checking::Debug) {
        Ok(trace) => trace,
        Err(e) => unreachable!("debug-mode execution never returns an error: {e}"),
    }
}

fn run<P: Protocol>(
    protocol: &P,
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
    checking: Checking,
) -> Result<Trace<P::State>, ExecError> {
    let n = config.n();
    let mut states: Vec<Vec<P::State>> = Vec::with_capacity(horizon.index() + 1);
    states.push(
        ProcessorId::all(n)
            .map(|p| protocol.initial_state(p, n, config.value(p)))
            .collect(),
    );

    let mut decisions: Vec<Option<Decision>> = vec![None; n];
    let mut messages_delivered = 0u64;
    let mut message_units = 0u64;
    record_decisions(protocol, &states[0], Time::ZERO, &mut decisions, checking)?;

    for round in Round::upto(horizon) {
        let prev = states
            .last()
            .expect("at least the initial states are present");
        let mut next: Vec<P::State> = Vec::with_capacity(n);
        for receiver in ProcessorId::all(n) {
            // A crashed processor is dead from its crash round on: its
            // state is carried forward unchanged (it neither sends nor
            // receives; its decisions no longer matter since it is
            // faulty).
            if pattern.crashed_by(receiver, round.end()) {
                next.push(prev[receiver.index()].clone());
                continue;
            }
            let received: Vec<Option<P::Message>> = ProcessorId::all(n)
                .map(|sender| {
                    if !pattern.delivers(sender, receiver, round) {
                        return None;
                    }
                    let msg = protocol.message(&prev[sender.index()], sender, receiver, round);
                    if let Some(msg) = &msg {
                        messages_delivered += 1;
                        message_units += protocol.message_units(msg);
                    }
                    msg
                })
                .collect();
            next.push(protocol.transition(&prev[receiver.index()], receiver, round, &received));
        }
        record_decisions(protocol, &next, round.end(), &mut decisions, checking)?;
        states.push(next);
    }

    Ok(Trace::new(
        config.clone(),
        pattern.clone(),
        horizon,
        states,
        decisions,
        messages_delivered,
        message_units,
    ))
}

fn record_decisions<P: Protocol>(
    protocol: &P,
    states: &[P::State],
    time: Time,
    decisions: &mut [Option<Decision>],
    checking: Checking,
) -> Result<(), ExecError> {
    for (idx, state) in states.iter().enumerate() {
        let processor = ProcessorId::new(idx);
        let output = protocol.output(state, processor);
        match (decisions[idx], output) {
            (None, Some(value)) => {
                decisions[idx] = Some(Decision { value, time });
            }
            (Some(prior), new) => {
                if new != Some(prior.value) {
                    match checking {
                        Checking::Strict => {
                            return Err(ExecError::DecisionRevoked { processor, time });
                        }
                        Checking::Debug => {
                            debug_assert!(false, "protocol revoked or changed a decision at {time}")
                        }
                    }
                }
            }
            (None, None) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FaultyBehavior, ProcSet, Value};

    /// Every processor floods the minimum value it has seen and decides on
    /// it after `n` rounds — a crude flooding consensus used to exercise
    /// the executor.
    struct FloodMin {
        rounds: u16,
    }

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct FloodState {
        min: Value,
        round: u16,
        decided: Option<Value>,
    }

    impl Protocol for FloodMin {
        type State = FloodState;
        type Message = Value;

        fn name(&self) -> &str {
            "flood-min"
        }

        fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> FloodState {
            FloodState {
                min: value,
                round: 0,
                decided: None,
            }
        }

        fn message(
            &self,
            state: &FloodState,
            _from: ProcessorId,
            _to: ProcessorId,
            _round: Round,
        ) -> Option<Value> {
            Some(state.min)
        }

        fn transition(
            &self,
            state: &FloodState,
            _p: ProcessorId,
            _round: Round,
            received: &[Option<Value>],
        ) -> FloodState {
            let min = received
                .iter()
                .flatten()
                .fold(state.min, |acc, &v| acc.min(v));
            let round = state.round + 1;
            let decided = state
                .decided
                .or_else(|| (round >= self.rounds).then_some(min));
            FloodState {
                min,
                round,
                decided,
            }
        }

        fn output(&self, state: &FloodState, _p: ProcessorId) -> Option<Value> {
            state.decided
        }
    }

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn failure_free_flooding_agrees_on_min() {
        let protocol = FloodMin { rounds: 2 };
        let config = InitialConfig::from_bits(3, 0b110); // p1 holds 0
        let pattern = FailurePattern::failure_free(3);
        let trace = execute(&protocol, &config, &pattern, Time::new(3)).unwrap();
        for q in 0..3 {
            assert_eq!(trace.decided_value(p(q)), Some(Value::Zero));
            assert_eq!(trace.decision_time(p(q)), Some(Time::new(2)));
        }
        assert!(trace.satisfies_weak_agreement());
        assert!(trace.satisfies_simultaneity());
    }

    #[test]
    fn silent_zero_holder_keeps_zero_hidden() {
        let protocol = FloodMin { rounds: 2 };
        // p0 holds 0 but crashes in round 1 delivering nothing.
        let config = InitialConfig::from_bits(3, 0b110);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(&protocol, &config, &pattern, Time::new(3)).unwrap();
        assert_eq!(trace.decided_value(p(1)), Some(Value::One));
        assert_eq!(trace.decided_value(p(2)), Some(Value::One));
        assert_eq!(trace.nonfaulty(), [p(1), p(2)].into_iter().collect());
    }

    #[test]
    fn crash_with_partial_delivery_splits_information_for_a_round() {
        let protocol = FloodMin { rounds: 1 };
        // p0 holds 0, crashes in round 1 delivering only to p1: p1 decides
        // 0, p2 decides 1 (flooding for a single round is not agreement —
        // which is the point of the Byzantine agreement problem).
        let config = InitialConfig::from_bits(3, 0b110);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::singleton(p(1)),
            },
        );
        let trace = execute(&protocol, &config, &pattern, Time::new(2)).unwrap();
        assert_eq!(trace.decided_value(p(1)), Some(Value::Zero));
        assert_eq!(trace.decided_value(p(2)), Some(Value::One));
        assert!(!trace.satisfies_weak_agreement());
    }

    #[test]
    fn crashed_processor_state_is_frozen() {
        let protocol = FloodMin { rounds: 1 };
        let config = InitialConfig::uniform(3, Value::One);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(&protocol, &config, &pattern, Time::new(3)).unwrap();
        assert_eq!(trace.state(p(0), Time::new(3)).round, 0);
        assert_eq!(trace.state(p(1), Time::new(3)).round, 3);
    }

    #[test]
    fn message_count_reflects_deliveries() {
        let protocol = FloodMin { rounds: 1 };
        let config = InitialConfig::uniform(2, Value::One);
        let pattern = FailurePattern::failure_free(2);
        let trace = execute(&protocol, &config, &pattern, Time::new(1)).unwrap();
        // Two processors exchange one message each for one round.
        assert_eq!(trace.messages_delivered(), 2);
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let protocol = FloodMin { rounds: 1 };
        let config = InitialConfig::uniform(3, Value::One);
        let pattern = FailurePattern::failure_free(4);
        let err = execute(&protocol, &config, &pattern, Time::new(1)).unwrap_err();
        assert_eq!(
            err,
            ExecError::ArityMismatch {
                config_n: 3,
                pattern_n: 4,
            }
        );
        assert!(err.to_string().contains("disagree"));
    }

    /// Decides 1 at time 0, then illegally flips to 0 — used to check the
    /// revocation guard.
    struct Fickle;

    impl Protocol for Fickle {
        type State = u16;
        type Message = ();

        fn name(&self) -> &str {
            "fickle"
        }

        fn initial_state(&self, _p: ProcessorId, _n: usize, _v: Value) -> u16 {
            0
        }

        fn message(&self, _: &u16, _: ProcessorId, _: ProcessorId, _: Round) -> Option<()> {
            None
        }

        fn transition(&self, s: &u16, _: ProcessorId, _: Round, _: &[Option<()>]) -> u16 {
            s + 1
        }

        fn output(&self, s: &u16, _p: ProcessorId) -> Option<Value> {
            Some(if *s == 0 { Value::One } else { Value::Zero })
        }
    }

    #[test]
    fn decision_revocation_is_a_typed_error() {
        let config = InitialConfig::uniform(2, Value::One);
        let pattern = FailurePattern::failure_free(2);
        let err = execute(&Fickle, &config, &pattern, Time::new(2)).unwrap_err();
        assert_eq!(
            err,
            ExecError::DecisionRevoked {
                processor: p(0),
                time: Time::new(1),
            }
        );
        assert!(err.to_string().contains("irreversible"));
    }

    #[test]
    fn unchecked_execution_matches_checked_on_valid_inputs() {
        let protocol = FloodMin { rounds: 2 };
        let config = InitialConfig::from_bits(3, 0b101);
        let pattern = FailurePattern::failure_free(3);
        let checked = execute(&protocol, &config, &pattern, Time::new(3)).unwrap();
        let unchecked = execute_unchecked(&protocol, &config, &pattern, Time::new(3));
        for q in 0..3 {
            assert_eq!(checked.decided_value(p(q)), unchecked.decided_value(p(q)));
            assert_eq!(
                checked.state(p(q), Time::new(3)),
                unchecked.state(p(q), Time::new(3))
            );
        }
        assert_eq!(checked.messages_delivered(), unchecked.messages_delivered());
    }

    #[test]
    #[should_panic(expected = "disagree on the number of processors")]
    fn unchecked_execution_panics_on_arity_mismatch() {
        let config = InitialConfig::uniform(3, Value::One);
        let pattern = FailurePattern::failure_free(4);
        let _ = execute_unchecked(&FloodMin { rounds: 1 }, &config, &pattern, Time::new(1));
    }
}
